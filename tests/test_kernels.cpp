// cal_kernels correctness: the blocked/register-tiled gemm_nn/nt/tn must
// match the naive triple-loop reference over odd and ragged shapes, honour
// the accumulate flag, propagate NaN/Inf per IEEE 754 (no zero-skip), and
// be bit-identical for every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace cal;

struct Shape {
  std::size_t m, k, n;
};

// Odd/ragged sweep: unit, primes, tall-skinny, wide-short, micro-tile
// multiples and off-by-one around the kMR=6 / kNR=8|16 register tile.
const std::vector<Shape> kShapes = {
    {1, 1, 1},    {1, 7, 1},     {2, 3, 5},      {5, 3, 2},
    {7, 11, 13},  {6, 16, 12},   {7, 17, 17},    {97, 3, 5},
    {5, 3, 97},   {3, 128, 3},   {64, 64, 64},   {33, 37, 41},
    {61, 1, 61},  {128, 130, 120}, {13, 256, 9}, {12, 300, 24},
};

Tensor random_mat(std::uint64_t seed, std::size_t r, std::size_t c) {
  Rng rng(seed);
  return Tensor::randn({r, c}, rng, 1.0F);
}

/// 1e-5 relative tolerance per the kernel-validation contract. The atol
/// term is scaled to the result's magnitude: for k > 256 the blocked path
/// combines 256-wide partial sums, so elements with heavy cancellation
/// carry an absolute error proportional to the summand scale, not to the
/// (tiny) final value.
void expect_close(const Tensor& got, const Tensor& want, const Shape& s,
                  const char* variant) {
  const float atol = 1e-5F * std::max(1.0F, want.abs_max());
  EXPECT_TRUE(allclose(got, want, atol, 1e-5F))
      << variant << " mismatch at " << s.m << "x" << s.k << "x" << s.n;
}

TEST(Kernels, GemmNnMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.m * 1000 + s.k, s.m, s.k);
    const Tensor b = random_mat(s.k * 1000 + s.n, s.k, s.n);
    Tensor want({s.m, s.n});
    kernels::gemm_naive(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_nn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_nn");
  }
}

TEST(Kernels, GemmNtMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.m * 77 + s.k, s.m, s.k);
    const Tensor b = random_mat(s.n * 77 + s.k, s.n, s.k);  // stored NxK
    Tensor want({s.m, s.n});
    const Tensor bt = b.transposed();
    kernels::gemm_naive(a.flat(), bt.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_nt(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_nt");
  }
}

TEST(Kernels, GemmTnMatchesNaiveAcrossShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = random_mat(s.k * 55 + s.m, s.k, s.m);  // stored KxM
    const Tensor b = random_mat(s.k * 55 + s.n, s.k, s.n);
    Tensor want({s.m, s.n});
    const Tensor at = a.transposed();
    kernels::gemm_naive(at.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
    Tensor got({s.m, s.n});
    kernels::gemm_tn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n);
    expect_close(got, want, s, "gemm_tn");
  }
}

TEST(Kernels, AccumulateAddsOntoExistingOutput) {
  const Shape s{13, 29, 21};
  const Tensor a = random_mat(1, s.m, s.k);
  const Tensor b = random_mat(2, s.k, s.n);
  Tensor base = random_mat(3, s.m, s.n);

  Tensor want = base;
  kernels::gemm_naive(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n,
                      /*accumulate=*/true);
  Tensor got = base;
  kernels::gemm_nn(a.flat(), b.flat(), got.flat(), s.m, s.k, s.n,
                   /*accumulate=*/true);
  expect_close(got, want, s, "gemm_nn(accumulate)");
  // And without the flag the prior contents must be overwritten.
  Tensor fresh({s.m, s.n});
  kernels::gemm_naive(a.flat(), b.flat(), fresh.flat(), s.m, s.k, s.n);
  Tensor over = base;
  kernels::gemm_nn(a.flat(), b.flat(), over.flat(), s.m, s.k, s.n);
  expect_close(over, fresh, s, "gemm_nn(overwrite)");
}

// The contract carried over from Tensor::matmul: no zero-skip branch, so a
// NaN (or Inf·0) anywhere in the k reduction poisons exactly the outputs it
// feeds — an adversarial perturbation that overflowed must surface.
TEST(Kernels, BlockedPathPropagatesNanAndInf) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::size_t m = 9, k = 20, n = 17;
  Tensor a({m, k}, 1.0F);
  Tensor b({k, n}, 0.0F);  // all-zero B: products are 1·0 except poisoned k
  a.at(4, 7) = nan;
  Tensor c({m, n});
  kernels::gemm_nn(a.flat(), b.flat(), c.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c.at(4, j))) << "NaN row lost at col " << j;
    EXPECT_EQ(c.at(3, j), 0.0F);
  }

  // Inf in A against an all-zero B row: Inf·0 must yield NaN, not 0.
  Tensor a2({m, k}, 1.0F);
  a2.at(2, 5) = inf;
  Tensor c2({m, n});
  kernels::gemm_nn(a2.flat(), b.flat(), c2.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(c2.at(2, j))) << "Inf·0 masked at col " << j;

  // Inf against positive B propagates Inf through the row sums.
  Tensor b3({k, n}, 1.0F);
  Tensor c3({m, n});
  kernels::gemm_nn(a2.flat(), b3.flat(), c3.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isinf(c3.at(2, j))) << "Inf lost at col " << j;
  EXPECT_FLOAT_EQ(c3.at(0, 0), static_cast<float>(k));

  // Same propagation on the fused-transpose paths.
  Tensor bt({n, k}, 0.0F);
  Tensor cnt({m, n});
  kernels::gemm_nt(a.flat(), bt.flat(), cnt.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(cnt.at(4, j)));
  Tensor atn({k, m}, 1.0F);
  atn.at(7, 4) = nan;
  Tensor ctn({m, n});
  kernels::gemm_tn(atn.flat(), b.flat(), ctn.flat(), m, k, n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_TRUE(std::isnan(ctn.at(4, j)));
}

TEST(Kernels, ThreadedSplitIsBitIdenticalToSerial) {
  // Big enough to clear the parallel-dispatch FLOP threshold.
  const Shape s{256, 320, 192};
  const Tensor a = random_mat(11, s.m, s.k);
  const Tensor b = random_mat(12, s.k, s.n);
  Tensor serial({s.m, s.n});
  ASSERT_EQ(kernels::max_threads(), 1u);
  kernels::gemm_nn(a.flat(), b.flat(), serial.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(4);
  Tensor threaded({s.m, s.n});
  kernels::gemm_nn(a.flat(), b.flat(), threaded.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(1);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], threaded[i]) << "thread split changed bits at " << i;
}

TEST(Kernels, ConcurrentCallersWithThreadsEnabledStayCorrect) {
  // Several threads issue pool-sized GEMMs at once: whoever does not win
  // the pool gate must fall back to the (bit-identical) serial path, never
  // join a foreign job or deadlock.
  const Shape s{192, 256, 160};
  const Tensor a = random_mat(21, s.m, s.k);
  const Tensor b = random_mat(22, s.k, s.n);
  Tensor want({s.m, s.n});
  kernels::gemm_nn(a.flat(), b.flat(), want.flat(), s.m, s.k, s.n);
  kernels::set_max_threads(4);
  constexpr std::size_t kCallers = 4;
  std::vector<Tensor> outs(kCallers, Tensor({s.m, s.n}));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t)
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 10; ++rep)
        kernels::gemm_nn(a.flat(), b.flat(), outs[t].flat(), s.m, s.k, s.n);
    });
  for (auto& c : callers) c.join();
  kernels::set_max_threads(1);
  for (std::size_t t = 0; t < kCallers; ++t)
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(outs[t][i], want[i])
          << "concurrent caller " << t << " diverged at " << i;
}

TEST(Kernels, RejectsMissizedSpans) {
  Tensor a({4, 3});
  Tensor b({3, 5});
  Tensor c({4, 5});
  EXPECT_THROW(
      kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 4, 3, 6),
      PreconditionError);
  EXPECT_THROW(
      kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 5, 3, 5),
      PreconditionError);
  EXPECT_THROW(kernels::gemm_nn(a.flat(), b.flat(), c.flat(), 0, 3, 5),
               PreconditionError);
}

}  // namespace
