// End-to-end tests of the CALLOC facade: the paper's headline behaviours
// on a small simulated building.
#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "core/calloc.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;
using namespace cal::core;

const sim::Scenario& scenario() {
  static const sim::Scenario sc = [] {
    sim::BuildingSpec spec;
    spec.name = "calloc-test";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.seed = 313;
    return sim::make_scenario(spec, 999);
  }();
  return sc;
}

CallocConfig fast_cfg(std::uint64_t seed = 71) {
  CallocConfig cfg;
  cfg.seed = seed;
  cfg.num_lessons = 5;
  cfg.train.max_epochs_per_lesson = 6;
  return cfg;
}

TEST(Calloc, FitPredictEndToEnd) {
  Calloc model(fast_cfg());
  model.fit(scenario().train);
  const auto& test = scenario().device_tests.back();  // OP3
  const auto stats = eval::evaluate_clean(model, test);
  EXPECT_LT(stats.error_m.mean, 2.0) << "clean mean error too high";
  EXPECT_EQ(model.name(), "CALLOC");
  EXPECT_NE(model.gradient_source(), nullptr);
}

TEST(Calloc, ReportCoversEveryLesson) {
  Calloc model(fast_cfg());
  model.fit(scenario().train);
  EXPECT_EQ(model.report().lessons.size(), 5u);
  EXPECT_GT(model.report().total_epochs, 0u);
}

TEST(Calloc, PredictBeforeFitThrows) {
  Calloc model(fast_cfg());
  EXPECT_THROW(model.predict(Tensor({1, 24})), PreconditionError);
  EXPECT_THROW(model.report(), PreconditionError);
  EXPECT_THROW(model.model(), PreconditionError);
}

TEST(Calloc, ConfigValidation) {
  CallocConfig cfg;
  cfg.num_lessons = 1;
  EXPECT_THROW(Calloc{cfg}, PreconditionError);
  cfg = CallocConfig{};
  cfg.train_epsilon = 2.0;
  EXPECT_THROW(Calloc{cfg}, PreconditionError);
}

TEST(Calloc, NcVariantUsesSingleLesson) {
  auto cfg = fast_cfg();
  cfg.use_curriculum = false;
  Calloc nc(cfg);
  EXPECT_EQ(nc.name(), "CALLOC-NC");
  nc.fit(scenario().train);
  EXPECT_EQ(nc.report().lessons.size(), 1u);
}

TEST(Calloc, RobustnessHeadline) {
  // The paper's core claim at test scale: under a strong unseen attack,
  // curriculum-trained CALLOC localises better than an undefended DNN
  // attacked with its own exact gradients.
  Calloc calloc_model(fast_cfg(5));
  calloc_model.fit(scenario().train);

  auto dnn = eval::make_framework("DNN", 5, /*fast=*/true);
  dnn->fit(scenario().train);

  const auto& test = scenario().device_tests[1];  // HTC (cross-device)
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 60.0;
  const auto calloc_attacked = eval::evaluate_under_attack(
      calloc_model, test, attacks::AttackKind::Fgsm, atk,
      *calloc_model.gradient_source());
  const auto dnn_attacked = eval::evaluate_under_attack(
      *dnn, test, attacks::AttackKind::Fgsm, atk, *dnn->gradient_source());

  EXPECT_LT(calloc_attacked.error_m.mean, dnn_attacked.error_m.mean)
      << "CALLOC should beat an undefended DNN under FGSM";
}

TEST(Calloc, RobustToUnseenIterativeAttacks) {
  // Trained only on FGSM lessons, CALLOC must remain usable under PGD
  // (paper: "does not require exposure to PGD/MIM during training").
  Calloc model(fast_cfg(6));
  model.fit(scenario().train);
  const auto& test = scenario().device_tests.back();
  attacks::AttackConfig atk;
  atk.epsilon = 0.2;
  atk.phi_percent = 50.0;
  atk.num_steps = 8;
  const auto pgd = eval::evaluate_under_attack(
      model, test, attacks::AttackKind::Pgd, atk, *model.gradient_source());
  const auto clean = eval::evaluate_clean(model, test);
  // Under attack the error grows, but stays within a sane envelope of the
  // building diagonal (not a collapse to random guessing ~ half the path).
  EXPECT_LT(pgd.error_m.mean, clean.error_m.mean + 5.0);
}

TEST(Calloc, DeterministicForSameSeed) {
  Calloc a(fast_cfg(17));
  Calloc b(fast_cfg(17));
  a.fit(scenario().train);
  b.fit(scenario().train);
  const auto& test = scenario().device_tests.back();
  EXPECT_EQ(a.predict(test.normalized()), b.predict(test.normalized()));
}

TEST(Calloc, WeightPersistenceRoundTrip) {
  // Train once, deploy twice: a fresh Calloc restored from disk must give
  // identical predictions without re-running the curriculum.
  Calloc trained(fast_cfg(23));
  trained.fit(scenario().train);
  const auto path = std::string("/tmp/cal_calloc_weights.bin");
  trained.save_weights(path);

  Calloc restored(fast_cfg(23));
  restored.load_weights(path, scenario().train);
  const auto& test = scenario().device_tests[3];
  EXPECT_EQ(trained.predict(test.normalized()),
            restored.predict(test.normalized()));
  EXPECT_NE(restored.gradient_source(), nullptr);
  std::remove(path.c_str());

  Calloc unfitted(fast_cfg());
  EXPECT_THROW(unfitted.save_weights("/tmp/nope.bin"), PreconditionError);
}

TEST(Calloc, ModelFootprintIsLightweight) {
  Calloc model(fast_cfg());
  model.fit(scenario().train);
  // The paper advertises a ~255 kB model; at this scale it must be far
  // smaller, and parameter accounting must stay consistent.
  EXPECT_LT(model.model().weight_bytes(), 300u * 1024u);
  EXPECT_EQ(model.model().parameter_count(),
            model.model().embedding_parameter_count() +
                model.model().attention_parameter_count() +
                model.model().classifier_parameter_count());
}

}  // namespace
