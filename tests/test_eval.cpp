// Unit tests: metrics, attack-evaluation harness, framework factory.
#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;
using namespace cal::eval;

data::FingerprintDataset line_dataset() {
  // Three RPs on a line 2 m apart.
  data::FingerprintDataset ds(2, {{0.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}});
  const std::vector<float> a{-40.0F, -80.0F};
  const std::vector<float> b{-60.0F, -60.0F};
  const std::vector<float> c{-80.0F, -40.0F};
  ds.add_sample(a, 0);
  ds.add_sample(b, 1);
  ds.add_sample(c, 2);
  return ds;
}

TEST(Metrics, ErrorsMatchHandComputation) {
  const auto ds = line_dataset();
  // Predict RP2 for everything: errors 4, 2, 0 metres.
  const std::vector<std::size_t> pred{2, 2, 2};
  const auto errors = localization_errors(ds, pred);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(errors[0], 4.0);
  EXPECT_DOUBLE_EQ(errors[1], 2.0);
  EXPECT_DOUBLE_EQ(errors[2], 0.0);

  const auto stats = error_stats(ds, pred);
  EXPECT_DOUBLE_EQ(stats.error_m.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.error_m.max, 4.0);
  EXPECT_NEAR(stats.accuracy, 1.0 / 3.0, 1e-12);
}

TEST(Metrics, PerfectPredictionIsZeroError) {
  const auto ds = line_dataset();
  const std::vector<std::size_t> pred{0, 1, 2};
  const auto stats = error_stats(ds, pred);
  EXPECT_DOUBLE_EQ(stats.error_m.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.accuracy, 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const auto ds = line_dataset();
  const std::vector<std::size_t> pred{0};
  EXPECT_THROW(localization_errors(ds, pred), PreconditionError);
}

TEST(Metrics, OutOfRangePredictionThrows) {
  const auto ds = line_dataset();
  const std::vector<std::size_t> pred{0, 1, 9};
  EXPECT_THROW(localization_errors(ds, pred), PreconditionError);
}

TEST(Frameworks, FactoryBuildsEveryName) {
  for (const auto& name : framework_names()) {
    auto model = make_framework(name, 1, /*fast=*/true);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
}

TEST(Frameworks, UnknownNameThrows) {
  EXPECT_THROW(make_framework("NotAModel", 1), PreconditionError);
}

TEST(Harness, CleanEqualsDirectPredict) {
  sim::BuildingSpec spec;
  spec.num_aps = 16;
  spec.path_length_m = 8;
  spec.seed = 5;
  const auto sc = sim::make_scenario(spec, 77);
  auto knn = make_framework("KNN", 1);
  knn->fit(sc.train);
  const auto& test = sc.device_tests.back();
  const auto stats = evaluate_clean(*knn, test);
  const auto direct = error_stats(test, knn->predict(test.normalized()));
  EXPECT_DOUBLE_EQ(stats.error_m.mean, direct.error_m.mean);
  EXPECT_DOUBLE_EQ(stats.accuracy, direct.accuracy);
}

TEST(Harness, AttackDegradesUndefendedModel) {
  sim::BuildingSpec spec;
  spec.num_aps = 16;
  spec.path_length_m = 10;
  spec.seed = 6;
  const auto sc = sim::make_scenario(spec, 78);
  auto dnn = make_framework("DNN", 2, /*fast=*/true);
  dnn->fit(sc.train);
  const auto& test = sc.device_tests.back();
  const auto clean = evaluate_clean(*dnn, test);

  attacks::AttackConfig atk;
  atk.epsilon = 0.4;
  atk.phi_percent = 100.0;
  const auto attacked = evaluate_under_attack(
      *dnn, test, attacks::AttackKind::Fgsm, atk, *dnn->gradient_source());
  EXPECT_GT(attacked.error_m.mean, clean.error_m.mean);
}

TEST(Harness, MitmManipulationWeakerOrEqualToSpoofing) {
  sim::BuildingSpec spec;
  spec.num_aps = 16;
  spec.path_length_m = 10;
  spec.seed = 7;
  const auto sc = sim::make_scenario(spec, 79);
  auto dnn = make_framework("DNN", 3, /*fast=*/true);
  dnn->fit(sc.train);
  const auto& test = sc.device_tests[0];  // BLU (deaf device, many zeros)

  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 100.0;
  const auto manip = evaluate_under_mitm(
      *dnn, test, attacks::MitmMode::SignalManipulation,
      attacks::AttackKind::Fgsm, atk, *dnn->gradient_source());
  const auto spoof = evaluate_under_mitm(
      *dnn, test, attacks::MitmMode::SignalSpoofing, attacks::AttackKind::Fgsm,
      atk, *dnn->gradient_source());
  // Spoofing dominates manipulation: it can also fabricate absent APs.
  EXPECT_GE(spoof.error_m.mean + 1e-9, manip.error_m.mean * 0.8);
}

}  // namespace
