// Unit tests: curriculum schedule and the adaptive training controller.
#include <gtest/gtest.h>

#include <numeric>

#include "common/ensure.hpp"
#include "attacks/attack.hpp"
#include "attacks/gradient_source.hpp"
#include "autograd/ops.hpp"
#include "core/adaptive_trainer.hpp"
#include "core/curriculum.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;
using namespace cal::core;

TEST(Curriculum, StandardScheduleShape) {
  const auto sched = CurriculumSchedule::standard(10, 0.1, 0.9);
  ASSERT_EQ(sched.size(), 10u);
  const auto& lessons = sched.lessons();
  // Lesson 1: pure original data (paper §IV.A).
  EXPECT_DOUBLE_EQ(lessons[0].phi_percent, 0.0);
  EXPECT_DOUBLE_EQ(lessons[0].adversarial_fraction, 0.0);
  EXPECT_DOUBLE_EQ(lessons[0].epsilon, 0.0);
  // Final lesson: ø = 100.
  EXPECT_DOUBLE_EQ(lessons.back().phi_percent, 100.0);
  EXPECT_DOUBLE_EQ(lessons.back().adversarial_fraction, 0.9);
  // ϵ fixed at 0.1 for every adversarial lesson.
  for (std::size_t i = 1; i < lessons.size(); ++i)
    EXPECT_DOUBLE_EQ(lessons[i].epsilon, 0.1);
  // Monotone difficulty.
  for (std::size_t i = 1; i < lessons.size(); ++i) {
    EXPECT_GE(lessons[i].phi_percent, lessons[i - 1].phi_percent);
    EXPECT_GE(lessons[i].adversarial_fraction,
              lessons[i - 1].adversarial_fraction);
  }
  // Lesson indices are 1-based like the paper's lesson numbering.
  EXPECT_EQ(lessons[0].index, 1u);
  EXPECT_EQ(lessons.back().index, 10u);
}

TEST(Curriculum, SecondLessonMatchesPaperExample) {
  // Paper: "the second lesson contains ø = 10 (10% attacked APs) with
  // ϵ = 0.1" — our linear schedule gives ø ≈ 11% for 10 lessons.
  const auto sched = CurriculumSchedule::standard();
  EXPECT_NEAR(sched.lessons()[1].phi_percent, 11.1, 0.2);
  EXPECT_DOUBLE_EQ(sched.lessons()[1].epsilon, 0.1);
}

TEST(Curriculum, NoCurriculumIsSingleHardLesson) {
  const auto nc = CurriculumSchedule::no_curriculum(0.1, 0.9);
  ASSERT_EQ(nc.size(), 1u);
  EXPECT_DOUBLE_EQ(nc.lessons()[0].phi_percent, 100.0);
  EXPECT_DOUBLE_EQ(nc.lessons()[0].adversarial_fraction, 0.9);
}

TEST(Curriculum, CustomScheduleValidation) {
  EXPECT_THROW(CurriculumSchedule({}), PreconditionError);
  Lesson bad;
  bad.phi_percent = 150.0;
  EXPECT_THROW(CurriculumSchedule({bad}), PreconditionError);
  Lesson l1;
  l1.phi_percent = 50.0;
  Lesson l2;
  l2.phi_percent = 10.0;  // decreasing ø violates curriculum premise
  EXPECT_THROW(CurriculumSchedule({l1, l2}), PreconditionError);
}

TEST(Curriculum, StandardNeedsTwoLessons) {
  EXPECT_THROW(CurriculumSchedule::standard(1), PreconditionError);
}

/// Small trained-from-scratch fixture for controller tests.
struct Fixture {
  Tensor x;
  std::vector<std::size_t> y;
  CallocModel model;

  Fixture()
      : model([] {
          CallocModelConfig cfg;
          cfg.num_aps = 16;
          cfg.num_rps = 9;
          cfg.embed_dim = 24;
          cfg.attention_dim = 12;
          cfg.seed = 5;
          return cfg;
        }()) {
    sim::BuildingSpec spec;
    spec.num_aps = 16;
    spec.path_length_m = 8;
    spec.seed = 31;
    const auto sc = sim::make_scenario(spec, 57);
    x = sc.train.normalized();
    y.assign(sc.train.labels().begin(), sc.train.labels().end());
    Tensor anchors = sc.train.mean_fingerprint_per_rp();
    for (std::size_t i = 0; i < anchors.size(); ++i)
      anchors[i] = data::normalize_rss(anchors[i]);
    std::vector<std::size_t> labels(sc.train.num_rps());
    std::iota(labels.begin(), labels.end(), 0);
    model.set_anchors(anchors, labels);
  }
};

TEST(AdaptiveTrainer, ConfigValidation) {
  AdaptiveTrainConfig cfg;
  cfg.max_epochs_per_lesson = 0;
  EXPECT_THROW(AdaptiveCurriculumTrainer{cfg}, PreconditionError);
  cfg = AdaptiveTrainConfig{};
  cfg.learning_rate = 0.0F;
  EXPECT_THROW(AdaptiveCurriculumTrainer{cfg}, PreconditionError);
  cfg = AdaptiveTrainConfig{};
  cfg.phi_reduction_step = 0.0;
  EXPECT_THROW(AdaptiveCurriculumTrainer{cfg}, PreconditionError);
}

TEST(AdaptiveTrainer, RunsFullCurriculumAndReports) {
  Fixture f;
  AdaptiveTrainConfig cfg;
  cfg.max_epochs_per_lesson = 4;
  cfg.seed = 9;
  AdaptiveCurriculumTrainer trainer(cfg);
  const auto sched = CurriculumSchedule::standard(5, 0.1, 0.8);
  const auto report = trainer.train(f.model, f.x, f.y, sched);

  ASSERT_EQ(report.lessons.size(), 5u);
  EXPECT_GT(report.total_epochs, 0u);
  for (std::size_t i = 0; i < report.lessons.size(); ++i) {
    const auto& lr = report.lessons[i];
    EXPECT_EQ(lr.lesson_index, i + 1);
    EXPECT_GT(lr.epochs_run, 0u);
    // Adaptive ø only ever decreases from the requested value.
    EXPECT_LE(lr.phi_trained, lr.phi_requested + 1e-9);
    EXPECT_GE(lr.phi_trained, 0.0);
  }
}

TEST(AdaptiveTrainer, PhiReductionsAreMultiplesOfStep) {
  Fixture f;
  AdaptiveTrainConfig cfg;
  cfg.max_epochs_per_lesson = 6;
  cfg.divergence_patience = 1;  // aggressive: adapt on any rise
  cfg.phi_reduction_step = 2.0;
  cfg.seed = 10;
  AdaptiveCurriculumTrainer trainer(cfg);
  const auto report =
      trainer.train(f.model, f.x, f.y, CurriculumSchedule::standard(4));
  for (const auto& lr : report.lessons) {
    const double reduced = lr.phi_requested - lr.phi_trained;
    EXPECT_NEAR(reduced, lr.adaptations * 2.0, 1e-9)
        << "lesson " << lr.lesson_index;
    EXPECT_LE(lr.adaptations, cfg.max_adaptations_per_lesson);
  }
}

TEST(AdaptiveTrainer, StaticModeNeverAdapts) {
  Fixture f;
  AdaptiveTrainConfig cfg;
  cfg.max_epochs_per_lesson = 4;
  cfg.divergence_patience = 0;  // static curriculum ablation
  cfg.seed = 11;
  AdaptiveCurriculumTrainer trainer(cfg);
  const auto report =
      trainer.train(f.model, f.x, f.y, CurriculumSchedule::standard(4));
  for (const auto& lr : report.lessons) {
    EXPECT_EQ(lr.adaptations, 0u);
    EXPECT_DOUBLE_EQ(lr.phi_trained, lr.phi_requested);
  }
}

TEST(AdaptiveTrainer, TrainingImprovesAdversarialRobustness) {
  // The Siamese warm start already gives a low *clean* loss before any
  // training; what the curriculum buys is robustness. Compare the loss on
  // FGSM-perturbed inputs before vs after curriculum training.
  Fixture f;
  attacks::AttackConfig atk;
  atk.epsilon = 0.2;
  atk.phi_percent = 100.0;
  auto attacked_loss = [&] {
    f.model.set_training(false);
    attacks::ModuleGradientSource grads(f.model);
    const Tensor x_adv = attacks::fgsm_attack(grads, f.x, f.y, atk);
    return static_cast<double>(
        autograd::cross_entropy(f.model.forward(autograd::constant(x_adv)),
                                f.y)
            ->value()[0]);
  };
  const double before = attacked_loss();
  AdaptiveTrainConfig cfg;
  cfg.max_epochs_per_lesson = 8;
  cfg.seed = 12;
  AdaptiveCurriculumTrainer trainer(cfg);
  trainer.train(f.model, f.x, f.y, CurriculumSchedule::standard(4));
  const double after = attacked_loss();
  EXPECT_LT(after, before)
      << "curriculum training should reduce loss under attack";
}

TEST(AdaptiveTrainer, RequiresAnchorsAndLabels) {
  CallocModelConfig mc;
  mc.num_aps = 16;
  mc.num_rps = 9;
  CallocModel no_anchors(mc);
  Fixture f;
  AdaptiveCurriculumTrainer trainer(AdaptiveTrainConfig{});
  EXPECT_THROW(
      trainer.train(no_anchors, f.x, f.y, CurriculumSchedule::standard(3)),
      PreconditionError);
  std::vector<std::size_t> short_y{0, 1};
  EXPECT_THROW(
      trainer.train(f.model, f.x, short_y, CurriculumSchedule::standard(3)),
      PreconditionError);
}

}  // namespace
