// Gradient correctness: every autograd op is verified against central
// finite differences, plus graph-mechanics tests (accumulation, topology,
// constants, composite attention).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "common/ensure.hpp"

namespace {

using namespace cal;
using autograd::Var;

/// Check d(scalar graph)/d(leaf) against central finite differences.
/// `build` must construct a scalar graph from the given leaf.
void check_gradient(Tensor x0, const std::function<Var(const Var&)>& build,
                    float fd_eps = 1e-2F, float tol = 2e-2F) {
  Var leaf = autograd::make_leaf(x0, true);
  Var loss = build(leaf);
  ASSERT_EQ(loss->value().size(), 1u) << "gradient check needs scalar loss";
  autograd::backward(loss);
  const Tensor analytic = leaf->grad();

  for (std::size_t i = 0; i < x0.size(); ++i) {
    Tensor xp = x0;
    xp[i] += fd_eps;
    Tensor xm = x0;
    xm[i] -= fd_eps;
    const float fp = build(autograd::make_leaf(xp, false))->value()[0];
    const float fm = build(autograd::make_leaf(xm, false))->value()[0];
    const float numeric = (fp - fm) / (2.0F * fd_eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * (1.0F + std::fabs(numeric)))
        << "gradient mismatch at flat index " << i;
  }
}

Tensor small_matrix(std::uint64_t seed, std::size_t r, std::size_t c) {
  Rng rng(seed);
  return Tensor::randn({r, c}, rng, 0.7F);
}

TEST(Autograd, MatmulGradientLhs) {
  const Tensor b = small_matrix(2, 3, 2);
  check_gradient(small_matrix(1, 2, 3), [&](const Var& x) {
    return autograd::mean_all(autograd::matmul(x, autograd::constant(b)));
  });
}

TEST(Autograd, MatmulGradientRhs) {
  const Tensor a = small_matrix(3, 2, 3);
  check_gradient(small_matrix(4, 3, 2), [&](const Var& x) {
    return autograd::mean_all(autograd::matmul(autograd::constant(a), x));
  });
}

TEST(Autograd, MatmulNtGradientLhs) {
  const Tensor b = small_matrix(12, 4, 3);  // N x D
  check_gradient(small_matrix(11, 2, 3), [&](const Var& x) {
    return autograd::mean_all(autograd::matmul_nt(x, autograd::constant(b)));
  });
}

TEST(Autograd, MatmulNtGradientRhs) {
  const Tensor a = small_matrix(13, 2, 3);  // M x D
  check_gradient(small_matrix(14, 4, 3), [&](const Var& x) {
    return autograd::mean_all(autograd::matmul_nt(autograd::constant(a), x));
  });
}

TEST(Autograd, MatmulNtMatchesTransposeComposition) {
  const Tensor a = small_matrix(15, 3, 4);
  const Tensor b = small_matrix(16, 5, 4);
  const Var fused = autograd::matmul_nt(autograd::constant(a),
                                        autograd::constant(b));
  const Var composed = autograd::matmul(
      autograd::constant(a), autograd::transpose(autograd::constant(b)));
  EXPECT_TRUE(allclose(fused->value(), composed->value(), 1e-6F, 1e-6F));
}

TEST(Autograd, AddSubMulGradients) {
  const Tensor other = small_matrix(5, 2, 2);
  check_gradient(small_matrix(6, 2, 2), [&](const Var& x) {
    auto c = autograd::constant(other);
    auto expr = autograd::mul(autograd::add(x, c), autograd::sub(x, c));
    return autograd::mean_all(expr);
  });
}

TEST(Autograd, AddRowwiseGradientBias) {
  const Tensor a = small_matrix(7, 3, 4);
  Rng rng(8);
  check_gradient(Tensor::randn({4}, rng), [&](const Var& bias) {
    return autograd::mean_all(
        autograd::add_rowwise(autograd::constant(a), bias));
  });
}

TEST(Autograd, SubRowwiseAndMeanOverRowsGradient) {
  check_gradient(small_matrix(9, 3, 4), [](const Var& x) {
    auto m = autograd::mean_over_rows(x);
    return autograd::mean_all(autograd::sub_rowwise(x, m));
  });
}

TEST(Autograd, ScaleGradient) {
  check_gradient(small_matrix(10, 2, 3), [](const Var& x) {
    return autograd::mean_all(autograd::scale(x, -2.5F));
  });
}

TEST(Autograd, ScaleByLearnableScalarGradient) {
  const Tensor a = small_matrix(11, 2, 2);
  Tensor s({1});
  s[0] = 1.7F;
  check_gradient(s, [&](const Var& scalar) {
    return autograd::mean_all(
        autograd::scale_by(autograd::constant(a), scalar));
  });
}

TEST(Autograd, TransposeGradient) {
  const Tensor b = small_matrix(12, 3, 2);
  check_gradient(small_matrix(13, 3, 2), [&](const Var& x) {
    return autograd::mean_all(
        autograd::matmul(autograd::transpose(x), autograd::constant(b)));
  });
}

TEST(Autograd, ConcatColsGradient) {
  const Tensor b = small_matrix(14, 2, 3);
  check_gradient(small_matrix(15, 2, 2), [&](const Var& x) {
    return autograd::mean_all(
        autograd::concat_cols(x, autograd::constant(b)));
  });
}

TEST(Autograd, ReshapeGradient) {
  check_gradient(small_matrix(16, 2, 6), [](const Var& x) {
    auto r = autograd::reshape(x, {3, 4});
    return autograd::mean_all(autograd::mul(r, r));
  });
}

TEST(Autograd, ReluGradient) {
  // Shift values away from the kink to keep finite differences clean.
  Tensor x = small_matrix(17, 3, 3);
  for (std::size_t i = 0; i < x.size(); ++i)
    if (std::fabs(x[i]) < 0.05F) x[i] = 0.2F;
  check_gradient(x, [](const Var& v) {
    return autograd::mean_all(autograd::relu(v));
  });
}

TEST(Autograd, TanhSigmoidGradients) {
  check_gradient(small_matrix(18, 2, 3), [](const Var& x) {
    return autograd::mean_all(
        autograd::mul(autograd::tanh_op(x), autograd::sigmoid(x)));
  });
}

TEST(Autograd, SoftmaxRowsGradient) {
  const Tensor w = small_matrix(19, 2, 4);
  check_gradient(small_matrix(20, 2, 4), [&](const Var& x) {
    return autograd::mean_all(
        autograd::mul(autograd::softmax_rows(x), autograd::constant(w)));
  });
}

TEST(Autograd, L2NormalizeRowsGradient) {
  const Tensor w = small_matrix(21, 2, 4);
  check_gradient(small_matrix(22, 2, 4), [&](const Var& x) {
    return autograd::mean_all(autograd::mul(autograd::l2_normalize_rows(x),
                                            autograd::constant(w)));
  });
}

TEST(Autograd, MseLossGradient) {
  const Tensor target = small_matrix(23, 2, 3);
  check_gradient(small_matrix(24, 2, 3), [&](const Var& x) {
    return autograd::mse_loss(x, target);
  });
}

TEST(Autograd, CrossEntropyGradient) {
  const std::vector<std::size_t> labels{1, 0, 2};
  check_gradient(small_matrix(25, 3, 4), [&](const Var& x) {
    return autograd::cross_entropy(x, labels);
  });
}

TEST(Autograd, AttentionCompositeGradient) {
  const Tensor k = small_matrix(26, 4, 3);
  const Tensor v = small_matrix(27, 4, 2);
  check_gradient(small_matrix(28, 2, 3), [&](const Var& q) {
    return autograd::mean_all(autograd::scaled_dot_product_attention(
        q, autograd::constant(k), autograd::constant(v)));
  });
}

TEST(Autograd, MeanSumReductions) {
  Tensor x = Tensor::from_rows({{2.0F, 4.0F}});
  auto leaf = autograd::make_leaf(x, true);
  EXPECT_FLOAT_EQ(autograd::mean_all(leaf)->value()[0], 3.0F);
  EXPECT_FLOAT_EQ(autograd::sum_all(leaf)->value()[0], 6.0F);
}

TEST(Autograd, DropoutEvalIsIdentityTrainScales) {
  Rng rng(30);
  Tensor x({1000}, 1.0F);
  x.reshape({10, 100});
  auto leaf = autograd::make_leaf(x, false);
  auto eval_out = autograd::dropout(leaf, 0.4F, rng, false);
  EXPECT_TRUE(allclose(eval_out->value(), x));
  auto train_out = autograd::dropout(leaf, 0.4F, rng, true);
  // Inverted dropout preserves the expectation.
  EXPECT_NEAR(train_out->value().sum() / 1000.0, 1.0, 0.1);
}

TEST(Autograd, DropoutMaskAppliesInBackward) {
  Rng rng(31);
  Tensor x({4, 4}, 1.0F);
  auto leaf = autograd::make_leaf(x, true);
  auto out = autograd::dropout(leaf, 0.5F, rng, true);
  auto loss = autograd::sum_all(out);
  autograd::backward(loss);
  // Gradient equals the mask: zero where dropped, 1/keep where kept.
  const Tensor& g = leaf->grad();
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_TRUE(g[i] == 0.0F || std::fabs(g[i] - 2.0F) < 1e-6F);
    EXPECT_EQ(g[i] == 0.0F, out->value()[i] == 0.0F);
  }
}

TEST(Autograd, GaussianNoisePassThroughGradient) {
  Rng rng(32);
  Tensor x({3, 3}, 0.5F);
  auto leaf = autograd::make_leaf(x, true);
  auto out = autograd::gaussian_noise(leaf, 0.3F, rng, true);
  autograd::backward(autograd::sum_all(out));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(leaf->grad()[i], 1.0F);
}

TEST(Autograd, GradientAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::from_rows({{1.0F, 2.0F}});
  auto leaf = autograd::make_leaf(x, true);
  for (int pass = 0; pass < 2; ++pass) {
    auto loss = autograd::mean_all(autograd::mul(leaf, leaf));
    autograd::backward(loss);
  }
  // d/dx mean(x^2) = x; two passes accumulate 2x.
  EXPECT_FLOAT_EQ(leaf->grad()[0], 2.0F);
  EXPECT_FLOAT_EQ(leaf->grad()[1], 4.0F);
  leaf->zero_grad();
  EXPECT_FLOAT_EQ(leaf->grad()[0], 0.0F);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  auto c = autograd::constant(Tensor::from_rows({{3.0F}}));
  auto leaf = autograd::make_leaf(Tensor::from_rows({{2.0F}}), true);
  auto loss = autograd::mean_all(autograd::mul(leaf, c));
  autograd::backward(loss);
  EXPECT_FLOAT_EQ(leaf->grad()[0], 3.0F);
  EXPECT_FALSE(c->requires_grad());
}

TEST(Autograd, DiamondGraphTopologicalOrder) {
  // y = (x*x) + (x*x) — the same subexpression feeding two consumers.
  auto leaf = autograd::make_leaf(Tensor::from_rows({{3.0F}}), true);
  auto sq = autograd::mul(leaf, leaf);
  auto loss = autograd::mean_all(autograd::add(sq, sq));
  autograd::backward(loss);
  EXPECT_FLOAT_EQ(leaf->grad()[0], 12.0F);  // d/dx 2x² = 4x
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  auto leaf = autograd::make_leaf(Tensor({2, 2}), true);
  EXPECT_THROW(autograd::backward(leaf), PreconditionError);
}

TEST(Autograd, ArgmaxRows) {
  auto t = Tensor::from_rows({{0.1F, 0.9F}, {2.0F, -1.0F}});
  const auto idx = autograd::argmax_rows(t);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(Autograd, SoftmaxRowsSumToOne) {
  auto t = small_matrix(33, 5, 7);
  const auto sm = autograd::softmax_rows_tensor(t);
  for (std::size_t i = 0; i < sm.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < sm.cols(); ++j) {
      EXPECT_GT(sm.at(i, j), 0.0F);
      row_sum += sm.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(Autograd, CrossEntropyRejectsBadLabels) {
  auto logits = autograd::make_leaf(Tensor({2, 3}), true);
  const std::vector<std::size_t> bad{0, 7};
  EXPECT_THROW(autograd::cross_entropy(logits, bad), PreconditionError);
}

}  // namespace
