// Serving-engine tests: queue semantics, cache behaviour, screening,
// drift-triggered cache invalidation, the registry/router/shard stack,
// and the headline guarantees — concurrent batched serving is
// bit-identical to sequential predict() on the same trained model, per
// tenant, and unknown tenants are rejected deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "attacks/attack.hpp"
#include "baselines/knn.hpp"
#include "common/ensure.hpp"
#include "common/fault_inject.hpp"
#include "core/calloc.hpp"
#include "serve/engine.hpp"
#include "serve/lru_cache.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "serve/screening.hpp"
#include "serve/service.hpp"
#include "serve/shard_index.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace cal;
using namespace cal::serve;

// ---------------------------------------------------------------------------
// Shared trained model: one curriculum run reused by every service test.
// ---------------------------------------------------------------------------

const sim::Scenario& scenario() {
  static const sim::Scenario sc = [] {
    sim::BuildingSpec spec;
    spec.name = "serve-test";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.seed = 313;
    return sim::make_scenario(spec, 999);
  }();
  return sc;
}

core::CallocConfig fast_cfg(std::uint64_t seed = 71) {
  core::CallocConfig cfg;
  cfg.seed = seed;
  cfg.num_lessons = 5;
  cfg.train.max_epochs_per_lesson = 6;
  return cfg;
}

struct TrainedModel {
  core::Calloc model{fast_cfg()};
  std::string weights_path;

  TrainedModel() {
    model.fit(scenario().train);
    weights_path = (std::filesystem::temp_directory_path() /
                    "cal_serve_test_weights.bin")
                       .string();
    model.save_weights(weights_path);
  }
  ~TrainedModel() { std::remove(weights_path.c_str()); }
};

TrainedModel& trained() {
  static TrainedModel tm;
  return tm;
}

/// Replica factory: deploy the one trained artefact into fresh models.
ReplicaFactory calloc_factory() {
  return [] {
    auto replica = std::make_unique<core::Calloc>(fast_cfg());
    replica->load_weights(trained().weights_path, scenario().train);
    return replica;
  };
}

std::vector<float> row_of(const Tensor& x, std::size_t r) {
  const auto row = x.row(r);
  return {row.begin(), row.end()};
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoAndBatchCap) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(int{i}));
  EXPECT_EQ(q.size(), 5u);
  const auto first = q.pop_batch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 0);
  EXPECT_EQ(first[2], 2);
  const auto rest = q.pop_batch(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[1], 4);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop_batch(4).size(), 1u);   // drain survivors
  EXPECT_TRUE(q.pop_batch(4).empty());    // closed-and-drained sentinel
}

TEST(BoundedQueue, FullQueueBlocksUntilDrained) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // must block until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop_batch(1).size(), 1u);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), PreconditionError);
}

TEST(BoundedQueue, TryPushAndTryPopNeverBlock) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_pop_batch(4).empty());  // empty: returns, not blocks
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int spilled = 3;
  EXPECT_FALSE(q.try_push(std::move(spilled)));  // full: refuse, not block
  EXPECT_EQ(spilled, 3);                         // refused item untouched
  const auto batch = q.try_pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_TRUE(q.try_push(3));  // slot freed
  q.close();
  EXPECT_FALSE(q.try_push(4));            // closed: refuse
  EXPECT_EQ(q.try_pop_batch(8).size(), 2u);  // drain survivors
  EXPECT_TRUE(q.try_pop_batch(8).empty());
}

TEST(BoundedQueue, TryOpsUnderProducerConsumerContention) {
  // Several producers spin on try_push against a deliberately tiny
  // capacity while consumers spin on try_pop_batch: every item must come
  // out exactly once, in spite of constant full/empty refusals. This is
  // the test the ThreadSanitizer CI job leans on for the queue's
  // non-blocking surface (the blocking paths are exercised above).
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;

  std::atomic<long long> pushed_sum{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &pushed_sum, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.try_push(int{v})) std::this_thread::yield();
        pushed_sum += v;
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const auto batch = q.try_pop_batch(8);
        for (const int v : batch) {
          popped_sum += v;
          ++popped_count;
        }
        if (batch.empty()) {
          // Producers joined before the flag flips, so done + empty
          // means empty forever.
          if (producers_done.load() && q.size() == 0) return;
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  producers_done = true;
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------------
// FingerprintCache
// ---------------------------------------------------------------------------

TEST(FingerprintCache, QuantizationGroupsJitteredScans) {
  FingerprintCache cache(8, 0.01F);
  const std::vector<float> a{0.500F, 0.300F, 0.700F};
  const std::vector<float> jittered{0.501F, 0.299F, 0.702F};  // < step/2 off
  const std::vector<float> elsewhere{0.100F, 0.900F, 0.200F};
  EXPECT_EQ(cache.make_key(a), cache.make_key(jittered));
  EXPECT_NE(cache.make_key(a), cache.make_key(elsewhere));
}

TEST(FingerprintCache, LruEvictionOrder) {
  FingerprintCache cache(2, 0.01F);
  const auto k1 = cache.make_key(std::vector<float>{0.1F});
  const auto k2 = cache.make_key(std::vector<float>{0.2F});
  const auto k3 = cache.make_key(std::vector<float>{0.3F});
  cache.insert(k1, 11);
  cache.insert(k2, 22);
  ASSERT_TRUE(cache.lookup(k1).has_value());  // bump k1 to MRU
  cache.insert(k3, 33);                       // evicts k2 (LRU)
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_EQ(cache.lookup(k1).value_or(999), 11u);
  EXPECT_EQ(cache.lookup(k3).value_or(999), 33u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FingerprintCache, ZeroCapacityDisables) {
  FingerprintCache cache(0, 0.01F);
  EXPECT_FALSE(cache.enabled());
  const auto k = cache.make_key(std::vector<float>{0.5F});
  cache.insert(k, 1);
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_THROW(FingerprintCache(4, 0.0F), PreconditionError);
}

// ---------------------------------------------------------------------------
// Screening
// ---------------------------------------------------------------------------

TEST(Screening, DistanceAndClassification) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  ScreeningThresholds th;
  th.flag_distance = 0.1;
  th.reject_distance = 0.3;
  const AnchorScreen screen(anchors, th);
  // Exactly on an anchor: distance 0, accepted.
  EXPECT_NEAR(screen.distance(std::vector<float>{0.2F, 0.8F}), 0.0, 1e-9);
  EXPECT_EQ(screen.classify(0.05), Verdict::Accept);
  EXPECT_EQ(screen.classify(0.2), Verdict::Flag);
  EXPECT_EQ(screen.classify(0.5), Verdict::Reject);
  // RMS-per-AP scale: (0.6,0.5) is 0.1 away from (0.5,0.5) in one of two
  // coordinates -> sqrt(0.01/2).
  EXPECT_NEAR(screen.distance(std::vector<float>{0.6F, 0.5F}),
              std::sqrt(0.01 / 2.0), 1e-6);
  EXPECT_THROW(AnchorScreen(anchors, {0.5, 0.1}), PreconditionError);
}

TEST(Screening, DisabledScreenAcceptsEverything) {
  const AnchorScreen screen;
  EXPECT_FALSE(screen.enabled());
  EXPECT_EQ(screen.distance(std::vector<float>{9.0F}), 0.0);
  EXPECT_EQ(screen.classify(1e9), Verdict::Accept);
}

TEST(Screening, CalibrationBoundsCleanData) {
  const auto& train = scenario().train;
  const Tensor anchors = anchor_database_from(train);
  const Tensor clean = train.normalized();
  const auto th = calibrate_thresholds(anchors, clean, 95.0, 2.0);
  EXPECT_GT(th.flag_distance, 0.0);
  EXPECT_NEAR(th.reject_distance, 2.0 * th.flag_distance, 1e-12);
  // At the 95th-percentile cutoff, roughly 5% of the calibration data
  // itself sits above the flag line — never more than ~10% of it.
  std::size_t above = 0;
  for (std::size_t i = 0; i < clean.rows(); ++i)
    if (anchor_distance(anchors, clean.row(i)) > th.flag_distance) ++above;
  EXPECT_LE(above, clean.rows() / 10);
}

// ---------------------------------------------------------------------------
// Single-tenant serving (a ServeEngine whose fleet is one tenant)
// ---------------------------------------------------------------------------

/// Test-local harness: the retired SingleTenantHarness shim, reduced to
/// the surface these tests exercise. Registers ONE tenant ("default")
/// and forwards the blocking single-queue calls to a private ServeEngine
/// — the production API is the engine itself.
class SingleTenantHarness {
 public:
  SingleTenantHarness(ReplicaFactory factory, std::size_t num_aps,
                      Tensor anchors, const ServiceConfig& cfg) {
    TenantSpec spec;
    spec.factory = std::move(factory);
    spec.num_aps = num_aps;
    spec.anchors = std::move(anchors);
    spec.service = cfg;
    init(std::move(spec), cfg);
  }

  /// Shared mode: one caller-owned model, a single replica slot.
  SingleTenantHarness(baselines::ILocalizer& shared_model,
                      std::size_t num_aps, Tensor anchors,
                      const ServiceConfig& cfg) {
    TenantSpec spec;
    spec.shared_model = &shared_model;
    spec.num_aps = num_aps;
    spec.anchors = std::move(anchors);
    spec.service = cfg;
    init(std::move(spec), cfg);
  }

  std::future<ServeResult> submit(std::vector<float> fingerprint) {
    return engine_->submit_blocking(key_, std::move(fingerprint)).result;
  }

  ServiceStats stats() const {
    return engine_->stats().per_tenant.front().stats;
  }
  const FingerprintCache& cache() const {
    return engine_->tenant_cache(key_);
  }
  void shutdown() { engine_->shutdown(); }

 private:
  void init(TenantSpec spec, const ServiceConfig& cfg) {
    ModelRegistry reg;
    reg.register_tenant(key_, std::move(spec));
    EngineConfig engine_cfg;
    engine_cfg.pool_size = cfg.num_workers;
    engine_cfg.seed = cfg.seed;
    engine_ = std::make_unique<ServeEngine>(reg.publish(), engine_cfg);
  }

  const TenantKey key_{"default", 0, ""};
  std::unique_ptr<ServeEngine> engine_;
};

TEST(Service, ConcurrentBatchedMatchesSequentialBitIdentical) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  const auto expected = trained().model.predict(x);

  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.cache_capacity = 0;  // every request must hit the model
  SingleTenantHarness service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 64;
  struct Outcome {
    std::size_t row;
    std::future<ServeResult> fut;
  };
  std::vector<std::vector<Outcome>> outcomes(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t row = (c * 7 + i * 3) % x.rows();
        outcomes[c].push_back({row, service.submit(row_of(x, row))});
      }
    });
  }
  for (auto& t : clients) t.join();

  for (auto& per_client : outcomes) {
    for (auto& o : per_client) {
      const ServeResult r = o.fut.get();
      EXPECT_TRUE(r.localized);
      EXPECT_EQ(r.verdict, Verdict::Accept);
      EXPECT_EQ(r.rp, expected[o.row]) << "row " << o.row;
      EXPECT_GE(r.latency_ms, 0.0);
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(Service, SharedModeSerializesOneModel) {
  const auto& test = scenario().device_tests.front();
  const Tensor x = test.normalized();
  const auto expected = trained().model.predict(x);

  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  SingleTenantHarness service(trained().model, test.num_aps(), Tensor{},
                              cfg);
  std::vector<std::future<ServeResult>> futs;
  for (std::size_t i = 0; i < x.rows(); ++i)
    futs.push_back(service.submit(row_of(x, i)));
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get().rp, expected[i]) << "row " << i;
}

TEST(Service, MicroBatchingCoalescesBacklog) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  ServiceConfig cfg;
  cfg.num_workers = 1;  // single worker => backlog must coalesce
  cfg.max_batch = 16;
  cfg.queue_capacity = 128;
  SingleTenantHarness service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);
  std::vector<std::future<ServeResult>> futs;
  for (std::size_t i = 0; i < 64; ++i)
    futs.push_back(service.submit(row_of(x, i % x.rows())));
  for (auto& f : futs) f.get();
  service.shutdown();
  const auto stats = service.stats();
  EXPECT_GT(stats.largest_batch, 1u)
      << "a single busy worker should drain queued requests in batches";
  EXPECT_LT(stats.batches, 64u);
}

TEST(Service, CacheServesRepeatTrafficAndAuditAgrees) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.cache_capacity = 32;
  cfg.cache_audit_rate = 0.5;  // audit half the hits against the model
  SingleTenantHarness service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);

  const auto fp = row_of(x, 0);
  const std::size_t first = service.submit(fp).get().rp;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(service.submit(fp));
  std::size_t hits = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_EQ(r.rp, first);  // cached or recomputed, same answer
    if (r.from_cache) ++hits;
  }
  service.shutdown();
  const auto stats = service.stats();
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(stats.cache_hits, hits);
  EXPECT_GT(stats.cache_audits, 0u);
  EXPECT_EQ(stats.cache_audit_mismatches, 0u)
      << "auditing a stationary device must agree with the cache";
}

TEST(Service, ScreeningFlagsPgdTrafficMoreThanClean) {
  const auto& test = scenario().device_tests[1];
  const Tensor clean = test.normalized();
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 100.0;
  atk.num_steps = 8;
  const Tensor attacked =
      attacks::pgd_attack(*trained().model.gradient_source(), clean,
                          test.labels(), atk);

  // Calibrate on a clean *online* capture spanning the device fleet —
  // the offline train set alone is too tight once session drift and
  // device heterogeneity kick in (its P95 sits below every test device).
  data::FingerprintDataset fleet = scenario().device_tests.front();
  for (std::size_t d = 1; d < scenario().device_tests.size(); ++d)
    fleet.merge(scenario().device_tests[d]);

  const Tensor anchors = trained().model.model().anchor_matrix();
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.screening =
      calibrate_thresholds(anchors, fleet.normalized(), 95.0, 3.0);
  SingleTenantHarness service(calloc_factory(), test.num_aps(), anchors,
                              cfg);

  auto suspicious_rate = [&](const Tensor& batch) {
    std::vector<std::future<ServeResult>> futs;
    for (std::size_t i = 0; i < batch.rows(); ++i)
      futs.push_back(service.submit(row_of(batch, i)));
    std::size_t suspicious = 0;
    for (auto& f : futs) {
      const auto r = f.get();
      if (r.verdict != Verdict::Accept) ++suspicious;
      EXPECT_EQ(r.localized, r.verdict != Verdict::Reject);
    }
    return static_cast<double>(suspicious) /
           static_cast<double>(batch.rows());
  };

  const double clean_rate = suspicious_rate(clean);
  const double attacked_rate = suspicious_rate(attacked);
  EXPECT_GT(attacked_rate, clean_rate)
      << "PGD fingerprints must be flagged more often than clean ones";
  EXPECT_GT(attacked_rate, 0.5)
      << "eps=0.3 over all APs should leave the clean manifold";
  EXPECT_GT(service.stats().flagged + service.stats().rejected, 0u);
}

TEST(Service, ValidatesInputsAndShutdownIsFinal) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  SingleTenantHarness service(trained().model,
                              scenario().train.num_aps(), Tensor{}, cfg);
  EXPECT_THROW(service.submit(std::vector<float>{0.5F}), PreconditionError);
  // Non-finite fingerprints from the untrusted channel are rejected at
  // submit(): a NaN would poison the batched forward pass (the GEMM layer
  // propagates it by contract) and garble the cache-key quantizer.
  {
    auto poisoned = row_of(scenario().train.normalized(), 0);
    poisoned[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_THROW(service.submit(poisoned), PreconditionError);
    poisoned[1] = std::numeric_limits<float>::infinity();
    EXPECT_THROW(service.submit(poisoned), PreconditionError);
  }
  service.shutdown();
  service.shutdown();  // idempotent
  const Tensor x = scenario().train.normalized();
  EXPECT_THROW(service.submit(row_of(x, 0)), PreconditionError);

  ServiceConfig bad;
  bad.num_workers = 0;
  EXPECT_THROW(SingleTenantHarness(trained().model, 24, Tensor{}, bad),
               PreconditionError);

  // A drift policy without an anchor screen would be silently inert
  // (drift feeds on screening distances) — rejected at construction.
  ServiceConfig inert_drift;
  inert_drift.drift.window = 8;
  EXPECT_THROW(
      SingleTenantHarness(trained().model, 24, Tensor{}, inert_drift),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// ShardIndex
// ---------------------------------------------------------------------------

TEST(ShardIndex, PrunedNearestMatchesFullScanBitForBit) {
  // Clustered anchors (the shape real per-RP fingerprints have): the
  // centroid bound must prune without ever changing the returned minimum.
  Rng rng(17);
  const std::size_t dim = 12;
  const std::size_t per_cluster = 20;
  Tensor anchors({3 * per_cluster, dim});
  const float centers[3] = {0.2F, 0.5F, 0.8F};
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_cluster; ++i) {
      auto row = anchors.row(c * per_cluster + i);
      for (auto& v : row)
        v = centers[c] + static_cast<float>(rng.normal(0.0, 0.02));
    }
  const ShardIndex index(anchors);
  ASSERT_EQ(index.num_anchors(), 3 * per_cluster);

  std::size_t scanned_total = 0;
  const std::size_t kQueries = 200;
  for (std::size_t q = 0; q < kQueries; ++q) {
    std::vector<float> fp(dim);
    for (auto& v : fp) v = static_cast<float>(rng.uniform(0.0, 1.0));
    ShardIndexProbe probe;
    const double got = index.nearest(fp, &probe);
    const double want = anchor_distance(anchors, fp);
    EXPECT_DOUBLE_EQ(got, want) << "query " << q;
    EXPECT_EQ(probe.scanned + probe.pruned, index.num_anchors());
    EXPECT_GE(probe.scanned, 1u);
    scanned_total += probe.scanned;
  }
  EXPECT_LT(scanned_total, kQueries * index.num_anchors())
      << "the centroid bound should prune at least some anchors";
}

TEST(ShardIndex, EdgeCasesAndValidation) {
  const ShardIndex disabled;
  EXPECT_TRUE(disabled.empty());
  EXPECT_EQ(disabled.num_anchors(), 0u);
  EXPECT_THROW(disabled.nearest(std::vector<float>{0.5F}),
               PreconditionError);

  const Tensor one = Tensor::from_rows({{0.25F, 0.75F}});
  const ShardIndex single(one);
  ShardIndexProbe probe;
  EXPECT_DOUBLE_EQ(single.nearest(std::vector<float>{0.25F, 0.75F}, &probe),
                   0.0);
  EXPECT_EQ(probe.scanned, 1u);
  EXPECT_EQ(probe.pruned, 0u);
  EXPECT_THROW(single.nearest(std::vector<float>{0.25F}), PreconditionError);
  EXPECT_THROW(ShardIndex(Tensor{}), PreconditionError);
}

// ---------------------------------------------------------------------------
// Screening calibration edge cases
// ---------------------------------------------------------------------------

TEST(Screening, CalibrationRejectsEmptyCapture) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  EXPECT_THROW(calibrate_thresholds(anchors, Tensor{}), PreconditionError);
}

TEST(Screening, CalibrationSingleSampleIsSane) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  const Tensor one = Tensor::from_rows({{0.6F, 0.5F}});
  const auto th = calibrate_thresholds(anchors, one, 95.0, 2.0);
  EXPECT_TRUE(std::isfinite(th.flag_distance));
  EXPECT_TRUE(std::isfinite(th.reject_distance));
  // The only clean distance IS every percentile of the distribution.
  EXPECT_NEAR(th.flag_distance, anchor_distance(anchors, one.row(0)), 1e-12);
  EXPECT_NEAR(th.reject_distance, 2.0 * th.flag_distance, 1e-12);
  EXPECT_NO_THROW(AnchorScreen(anchors, th));
}

TEST(Screening, CalibrationAllIdenticalDistancesIsSane) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  Tensor same({6, 2});
  for (std::size_t i = 0; i < same.rows(); ++i) {
    same.at(i, 0) = 0.6F;
    same.at(i, 1) = 0.5F;
  }
  const auto th = calibrate_thresholds(anchors, same, 95.0, 2.0);
  const double d = anchor_distance(anchors, same.row(0));
  EXPECT_TRUE(std::isfinite(th.flag_distance));
  EXPECT_NEAR(th.flag_distance, d, 1e-12);
  EXPECT_NEAR(th.reject_distance, 2.0 * d, 1e-12);
}

TEST(Screening, CalibrationOnAnchorsYieldsZeroThresholds) {
  // Clean capture sitting exactly on the anchors: all distances are 0, so
  // both cutoffs collapse to 0 — still a valid screen (0 <= flag <=
  // reject, no NaN) that accepts on-anchor traffic and rejects the rest.
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  const auto th = calibrate_thresholds(anchors, anchors, 95.0, 2.0);
  EXPECT_EQ(th.flag_distance, 0.0);
  EXPECT_EQ(th.reject_distance, 0.0);
  const AnchorScreen screen(anchors, th);
  EXPECT_EQ(screen.classify(screen.distance(std::vector<float>{0.2F, 0.8F})),
            Verdict::Accept);
  EXPECT_EQ(screen.classify(screen.distance(std::vector<float>{0.3F, 0.8F})),
            Verdict::Reject);
}

TEST(Screening, CalibrationRejectsNonFiniteSamples) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}});
  Tensor bad({2, 2});
  bad.at(0, 0) = 0.5F;
  bad.at(0, 1) = 0.5F;
  bad.at(1, 0) = std::numeric_limits<float>::quiet_NaN();
  bad.at(1, 1) = 0.5F;
  EXPECT_THROW(calibrate_thresholds(anchors, bad), PreconditionError);
}

// ---------------------------------------------------------------------------
// Drift-triggered cache invalidation
// ---------------------------------------------------------------------------

TEST(DriftMonitor, SlopeTrendSignalsOnceThenRebaselines) {
  DriftPolicy p;
  p.window = 4;
  p.slope_factor = 1.5;
  DriftMonitor m(p);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.record(0.01));  // baseline
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.record(0.012));  // 1.2x: ok
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(m.record(0.05));
  EXPECT_TRUE(m.record(0.05));  // window completes 4.2x above baseline
  // The drifted window became the new baseline: a persistent shift
  // flushes once, not forever.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.record(0.05));
}

TEST(DriftMonitor, GradualCreepAccumulatesAgainstPinnedBaseline) {
  // Drift ramping below slope_factor per window must not ratchet the
  // baseline up with it: the pinned baseline catches the cumulative
  // shift once it crosses the factor.
  DriftPolicy p;
  p.window = 4;
  p.slope_factor = 1.5;
  DriftMonitor m(p);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.record(0.01));   // baseline
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.record(0.013));  // 1.3x: ok
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(m.record(0.017));
  EXPECT_TRUE(m.record(0.017))
      << "1.7x the PINNED baseline must flush even though each step was "
         "below slope_factor relative to its predecessor";
}

TEST(DriftMonitor, AbsoluteLevelAndValidation) {
  DriftPolicy p;
  p.window = 2;
  p.slope_factor = 1e9;  // slope can never trigger
  p.level = 0.03;
  DriftMonitor m(p);
  EXPECT_FALSE(m.record(0.01));
  EXPECT_FALSE(m.record(0.01));  // baseline window, below level
  EXPECT_FALSE(m.record(0.05));
  EXPECT_TRUE(m.record(0.05));  // window mean 0.05 crosses the level
  // A persistent shift that SETTLES above the level flushes once — the
  // rebaselined map is the new normal, not a flush-every-window storm.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(m.record(0.05));

  DriftMonitor off;  // window == 0 disables
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.record(1e9));

  DriftPolicy bad;
  bad.window = 4;
  bad.slope_factor = 0.5;
  EXPECT_THROW(DriftMonitor{bad}, PreconditionError);
}

TEST(DriftMonitor, TrendSnapshotShowsDriftBuildingBeforeTheFlush) {
  DriftPolicy p;
  p.window = 4;
  p.slope_factor = 1.5;
  DriftMonitor m(p);

  const DriftTrend fresh = m.snapshot();
  EXPECT_TRUE(fresh.enabled);
  EXPECT_EQ(fresh.window, 4u);
  EXPECT_LT(fresh.baseline_mean, 0.0);  // no window completed yet
  EXPECT_LT(fresh.last_window_mean, 0.0);
  EXPECT_EQ(fresh.partial_n, 0u);
  EXPECT_EQ(fresh.windows_completed, 0u);

  for (int i = 0; i < 4; ++i) m.record(0.01);  // baseline window
  // Drift building: two samples into the next window, well above the
  // baseline but not yet a completed window — exactly what an operator
  // must be able to see BEFORE the flush fires.
  m.record(0.02);
  m.record(0.02);
  const DriftTrend building = m.snapshot();
  EXPECT_NEAR(building.baseline_mean, 0.01, 1e-12);
  EXPECT_NEAR(building.last_window_mean, 0.01, 1e-12);
  EXPECT_EQ(building.partial_n, 2u);
  EXPECT_NEAR(building.partial_mean, 0.02, 1e-12);
  EXPECT_EQ(building.windows_completed, 1u);

  m.reset();  // hot reload forgets the retired deployment's distribution
  const DriftTrend after = m.snapshot();
  EXPECT_LT(after.baseline_mean, 0.0);
  EXPECT_EQ(after.partial_n, 0u);
  EXPECT_EQ(after.windows_completed, 0u);

  const DriftTrend disabled = DriftMonitor{}.snapshot();
  EXPECT_FALSE(disabled.enabled);
}

TEST(Service, DriftTrendFlushesShardCache) {
  const auto& train = scenario().train;
  const Tensor x = train.normalized();
  baselines::Knn knn(3);
  knn.fit(train);

  ServiceConfig cfg;
  cfg.num_workers = 1;  // deterministic window ordering
  cfg.max_batch = 1;
  cfg.cache_capacity = 32;
  cfg.drift.window = 8;
  cfg.drift.slope_factor = 1.5;
  // Screen enabled with accept-everything thresholds: we want distances
  // recorded, not verdicts issued.
  SingleTenantHarness service(knn, train.num_aps(),
                              anchor_database_from(train), cfg);

  const auto fp = row_of(x, 0);
  // Two windows of stable traffic: establishes the baseline and fills
  // the cache (the repeats must come from it).
  bool saw_cache_hit = false;
  for (int i = 0; i < 16; ++i)
    saw_cache_hit |= service.submit(fp).get().from_cache;
  EXPECT_TRUE(saw_cache_hit);
  EXPECT_GT(service.cache().size(), 0u);
  EXPECT_EQ(service.stats().drift_flushes, 0u);

  // Synthetic drift: the whole radio map shifts by 5 dB (+0.05 on the
  // normalised scale) — distances grow well past 1.5x baseline.
  auto drifted = fp;
  for (auto& v : drifted) v += 0.05F;
  for (int i = 0; i < 8; ++i) service.submit(drifted).get();
  EXPECT_EQ(service.stats().drift_flushes, 1u)
      << "completing a drifted window must flush exactly once";

  // The pre-drift entry is gone: the same fingerprint misses the cache.
  EXPECT_FALSE(service.submit(fp).get().from_cache)
      << "drift flush must evict the stale pre-drift cache entry";
  service.shutdown();
}

// ---------------------------------------------------------------------------
// ModelRegistry / ShardRouter
// ---------------------------------------------------------------------------

ReplicaFactory dummy_factory() {
  return [] { return std::make_unique<baselines::Knn>(1); };
}

TenantSpec dummy_spec(std::size_t num_aps = 8) {
  TenantSpec spec;
  spec.factory = dummy_factory();
  spec.num_aps = num_aps;
  return spec;
}

TEST(Registry, ResolvesExactFallbackAndMiss) {
  ModelRegistry reg;
  reg.register_tenant({"A", 0, "OP3"}, dummy_spec());
  reg.register_tenant({"A", 1, "OP3"}, dummy_spec());
  reg.register_tenant({"B", 0, ""}, dummy_spec());
  reg.set_profile_fallbacks({"OP3", ""});
  EXPECT_EQ(reg.size(), 3u);

  const auto exact = reg.resolve({"A", 0, "OP3"});
  EXPECT_EQ(exact.kind, ModelRegistry::Resolution::Kind::Exact);
  EXPECT_EQ(exact.resolved, (TenantKey{"A", 0, "OP3"}));

  // Unknown profile walks the chain to the venue's OP3 model...
  const auto fb = reg.resolve({"A", 0, "S7"});
  EXPECT_EQ(fb.kind, ModelRegistry::Resolution::Kind::Fallback);
  EXPECT_EQ(fb.resolved, (TenantKey{"A", 0, "OP3"}));
  // ...or to the venue-generic entry when there is no OP3 model.
  const auto generic = reg.resolve({"B", 0, "S7"});
  EXPECT_EQ(generic.kind, ModelRegistry::Resolution::Kind::Fallback);
  EXPECT_EQ(generic.resolved, (TenantKey{"B", 0, ""}));

  // Unknown building and unknown floor are misses, not guesses.
  EXPECT_EQ(reg.resolve({"C", 0, "OP3"}).kind,
            ModelRegistry::Resolution::Kind::Miss);
  EXPECT_EQ(reg.resolve({"A", 7, "OP3"}).kind,
            ModelRegistry::Resolution::Kind::Miss);
}

TEST(Registry, ValidatesSpecsAndRejectsDuplicates) {
  ModelRegistry reg;
  reg.register_tenant({"A", 0, "OP3"}, dummy_spec());
  EXPECT_THROW(reg.register_tenant({"A", 0, "OP3"}, dummy_spec()),
               PreconditionError);
  EXPECT_THROW(reg.register_tenant({"", 0, "OP3"}, dummy_spec()),
               PreconditionError);

  TenantSpec no_factory = dummy_spec();
  no_factory.factory = nullptr;
  EXPECT_THROW(reg.register_tenant({"B", 0, ""}, std::move(no_factory)),
               PreconditionError);

  TenantSpec no_aps = dummy_spec(0);
  EXPECT_THROW(reg.register_tenant({"B", 0, ""}, std::move(no_aps)),
               PreconditionError);

  TenantSpec bad_anchors = dummy_spec(8);
  bad_anchors.anchors = Tensor({2, 5});  // 5 != num_aps
  EXPECT_THROW(reg.register_tenant({"B", 0, ""}, std::move(bad_anchors)),
               PreconditionError);
}

TEST(Router, DeterministicShardsAndRouting) {
  ModelRegistry reg;
  reg.register_tenant({"B", 0, "OP3"}, dummy_spec());
  reg.register_tenant({"A", 0, "OP3"}, dummy_spec());
  reg.register_tenant({"A", 0, ""}, dummy_spec());
  reg.set_profile_fallbacks({"OP3", ""});

  const ShardRouter router(reg);
  ASSERT_EQ(router.num_shards(), 3u);
  // str()-sorted shard order: "A/0:*" < "A/0:OP3" < "B/0:OP3".
  EXPECT_EQ(router.shard_key(0), (TenantKey{"A", 0, ""}));
  EXPECT_EQ(router.shard_key(1), (TenantKey{"A", 0, "OP3"}));
  EXPECT_EQ(router.shard_key(2), (TenantKey{"B", 0, "OP3"}));
  EXPECT_THROW(router.shard_key(3), PreconditionError);

  const auto exact = router.route({"B", 0, "OP3"});
  EXPECT_EQ(exact.status, RouteDecision::Status::Exact);
  EXPECT_EQ(exact.shard, 2u);

  const auto fb = router.route({"A", 0, "S7"});
  EXPECT_EQ(fb.status, RouteDecision::Status::Fallback);
  EXPECT_EQ(fb.shard, 1u);  // chain prefers OP3 over venue-generic

  // No venue-generic entry for B, but the chain still finds B's OP3
  // model for a profile-less request.
  const auto generic = router.route({"B", 0, ""});
  EXPECT_EQ(generic.status, RouteDecision::Status::Fallback);
  EXPECT_EQ(generic.shard, 2u);

  EXPECT_EQ(router.route({"Z", 0, "OP3"}).status,
            RouteDecision::Status::Reject);

  EXPECT_THROW(ShardRouter{ModelRegistry{}}, PreconditionError);
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TEST(TokenBucket, RefillAndBurstSemantics) {
  using namespace std::chrono;
  const auto t0 = steady_clock::now();
  TokenBucket bucket(QuotaPolicy{2.0, 2.0});
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_FALSE(bucket.try_acquire(t0));  // burst exhausted
  EXPECT_TRUE(bucket.try_acquire(t0 + milliseconds(500)));  // +1 token
  EXPECT_FALSE(bucket.try_acquire(t0 + milliseconds(500)));
  // Idle refill is capped at the burst, never unbounded.
  EXPECT_TRUE(bucket.try_acquire(t0 + seconds(60)));
  EXPECT_TRUE(bucket.try_acquire(t0 + seconds(60)));
  EXPECT_FALSE(bucket.try_acquire(t0 + seconds(60)));

  // burst == 0 with a rate defaults the bucket depth to one second.
  TokenBucket rate_only(QuotaPolicy{3.0, 0.0});
  EXPECT_TRUE(rate_only.try_acquire(t0));
  EXPECT_TRUE(rate_only.try_acquire(t0));
  EXPECT_TRUE(rate_only.try_acquire(t0));
  EXPECT_FALSE(rate_only.try_acquire(t0));

  // Sub-1/s rates mean "one request per 1/rate seconds" — the effective
  // burst clamps to one whole token, never a permanent lockout.
  TokenBucket slow(QuotaPolicy{0.5, 0.0});
  EXPECT_TRUE(slow.try_acquire(t0));
  EXPECT_FALSE(slow.try_acquire(t0 + seconds(1)));  // only half a token
  EXPECT_TRUE(slow.try_acquire(t0 + seconds(2)));

  TokenBucket unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_acquire(t0));

  TokenBucket reconfigured(QuotaPolicy{1.0, 1.0});
  EXPECT_TRUE(reconfigured.try_acquire(t0));
  EXPECT_FALSE(reconfigured.try_acquire(t0));
  reconfigured.reconfigure(QuotaPolicy{1.0, 1.0});  // restarts full
  EXPECT_TRUE(reconfigured.try_acquire(t0));

  EXPECT_THROW(TokenBucket(QuotaPolicy{-1.0, 0.0}), PreconditionError);
}

TEST(TokenBucket, ContendedAcquireNeverOversellsTheBurst) {
  // Threads race try_acquire at a FROZEN timestamp (no refill can ever
  // land), so the burst is the hard ceiling on total grants no matter
  // how the acquisitions interleave. The ThreadSanitizer CI job runs
  // this to exercise the bucket's internal locking under contention.
  using namespace std::chrono;
  const auto t0 = steady_clock::now();
  constexpr int kBurst = 8;
  TokenBucket bucket(QuotaPolicy{0.001, static_cast<double>(kBurst)});

  std::atomic<int> granted{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
      threads.emplace_back([&bucket, &granted, t0] {
        for (int i = 0; i < 1000; ++i)
          if (bucket.try_acquire(t0)) ++granted;
      });
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(granted.load(), kBurst) << "a frozen clock must sell exactly "
                                       "the burst, never a token more";

  // Concurrent refunds (the QueueFull give-back path) restore capacity
  // but cap at the burst: 16 refunds refill at most kBurst tokens.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
      threads.emplace_back([&bucket] {
        for (int i = 0; i < 4; ++i) bucket.refund();
      });
    for (auto& th : threads) th.join();
  }
  int regained = 0;
  for (int i = 0; i < 4 * kBurst; ++i)
    if (bucket.try_acquire(t0)) ++regained;
  EXPECT_EQ(regained, kBurst) << "refunds must cap at the burst";
}

// ---------------------------------------------------------------------------
// ServeEngine
// ---------------------------------------------------------------------------

/// Three small venues with distinct geometries and AP counts. Tenants are
/// KNN models (cheap, deterministic) — the registry is model-agnostic.
const std::vector<sim::Scenario>& small_fleet() {
  static const std::vector<sim::Scenario> fleet = [] {
    std::vector<sim::BuildingSpec> specs(3);
    specs[0].name = "venue-a";
    specs[0].num_aps = 20;
    specs[0].path_length_m = 14;
    specs[0].seed = 111;
    specs[1].name = "venue-b";
    specs[1].num_aps = 26;
    specs[1].path_length_m = 18;
    specs[1].seed = 222;
    specs[2].name = "venue-c";
    specs[2].num_aps = 32;
    specs[2].path_length_m = 22;
    specs[2].seed = 333;
    return sim::make_fleet(specs, 4242);
  }();
  return fleet;
}

ReplicaFactory knn_factory(const data::FingerprintDataset& train) {
  return [&train] {
    auto model = std::make_unique<baselines::Knn>(3);
    model->fit(train);
    return model;
  };
}

TenantSpec venue_spec(const sim::Scenario& sc, std::size_t slots = 2) {
  TenantSpec spec;
  spec.factory = knn_factory(sc.train);
  spec.num_aps = sc.train.num_aps();
  spec.anchors = anchor_database_from(sc.train);
  spec.service.num_workers = slots;
  spec.service.max_batch = 8;
  spec.service.queue_capacity = 64;
  return spec;
}

ModelRegistry small_fleet_registry(std::size_t slots_per_tenant = 2) {
  ModelRegistry reg;
  for (const auto& sc : small_fleet())
    reg.register_tenant({sc.building_spec.name, 0, "OP3"},
                        venue_spec(sc, slots_per_tenant));
  reg.set_profile_fallbacks({"OP3"});
  return reg;
}

/// Shorthand for the engine's own blocking wrapper (tests that exercise
/// the typed outcomes call engine.submit directly instead).
EngineSubmission submit_blocking(ServeEngine& engine, const TenantKey& key,
                                 const std::vector<float>& fp) {
  return engine.submit_blocking(key, fp);
}

/// ILocalizer returning a constant label — makes it observable WHICH
/// deployment served a request across a hot reload.
class ConstLocalizer : public baselines::ILocalizer {
 public:
  explicit ConstLocalizer(std::size_t label) : label_(label) {}
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor& x) override {
    return std::vector<std::size_t>(x.rows(), label_);
  }
  std::string name() const override { return "Const"; }

 private:
  std::size_t label_;
};

/// predict() blocks until the shared gate opens — freezes the pool on
/// demand so queue depth and admission timing are deterministic. The
/// optional `entered` promise fires when the first predict() call starts,
/// so a test can establish "the worker has claimed a batch" before acting.
class GateLocalizer : public baselines::ILocalizer {
 public:
  GateLocalizer(std::shared_future<void> gate, std::size_t label,
                std::promise<void>* entered = nullptr)
      : gate_(std::move(gate)), label_(label), entered_(entered) {}
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor& x) override {
    if (entered_ != nullptr && !entered_fired_.exchange(true))
      entered_->set_value();
    gate_.wait();
    return std::vector<std::size_t>(x.rows(), label_);
  }
  std::string name() const override { return "Gate"; }

 private:
  std::shared_future<void> gate_;
  std::size_t label_;
  std::promise<void>* entered_;
  std::atomic<bool> entered_fired_{false};
};

constexpr std::size_t kTinyAps = 4;
const std::vector<float>& tiny_fp() {
  static const std::vector<float> fp{0.1F, 0.2F, 0.3F, 0.4F};
  return fp;
}

TenantSpec const_spec(std::size_t label, std::size_t slots = 1) {
  TenantSpec spec;
  spec.factory = [label] { return std::make_unique<ConstLocalizer>(label); };
  spec.num_aps = kTinyAps;
  spec.service.num_workers = slots;
  spec.service.max_batch = 4;
  spec.service.queue_capacity = 8;
  return spec;
}

TEST(Engine, RoutedBitIdenticalToSequentialAcrossHotReload) {
  const auto& fleet = small_fleet();
  // Sequential ground truth: each venue's own model on its own traffic.
  std::vector<std::vector<std::vector<std::size_t>>> expected(fleet.size());
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    baselines::Knn knn(3);
    knn.fit(fleet[v].train);
    for (const auto& test : fleet[v].device_tests)
      expected[v].push_back(knn.predict(test.normalized()));
  }

  ModelRegistry reg = small_fleet_registry();
  EngineConfig cfg;
  cfg.pool_size = 4;  // shared across all three tenants
  ServeEngine engine(reg.publish(), cfg);
  ASSERT_EQ(engine.num_tenants(), 3u);
  EXPECT_EQ(engine.pool_size(), 4u);

  const auto stream = sim::fleet_request_stream(fleet, 300, 99, 0.25);
  struct Sent {
    sim::FleetRequest req;
    EngineSubmission sub;
  };
  std::vector<Sent> sent;
  sent.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i == stream.size() / 2) {
      // Mid-stream hot reload of venue-a (same training data, bit-
      // identical weights): in-flight and queued requests must keep
      // resolving to the same predictions as sequential per-tenant
      // predict() — the RCU swap is invisible in the outputs.
      reg.reload_tenant({"venue-a", 0, "OP3"}, venue_spec(fleet[0]));
      engine.deploy(reg.publish());
    }
    const auto& req = stream[i];
    const auto& sc = fleet[req.venue];
    const Tensor x = sc.device_tests[req.device].normalized();
    sent.push_back({req, submit_blocking(engine,
                                         {sc.building_spec.name, 0, "OP3"},
                                         row_of(x, req.row))});
  }
  for (auto& s : sent) {
    EXPECT_EQ(s.sub.admission, Admission::Accepted);
    EXPECT_EQ(s.sub.decision.status, RouteDecision::Status::Exact);
    const ServeResult r = s.sub.result.get();
    EXPECT_TRUE(r.localized);
    EXPECT_EQ(r.rp, expected[s.req.venue][s.req.device][s.req.row])
        << "venue " << s.req.venue << " device " << s.req.device << " row "
        << s.req.row;
  }
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.route_exact, stream.size());
  EXPECT_EQ(stats.route_fallback, 0u);
  EXPECT_EQ(stats.route_rejected, 0u);
  EXPECT_EQ(stats.deploys, 1u);
  EXPECT_EQ(stats.reload_flushes, 1u);
  EXPECT_EQ(stats.snapshot_epoch, 2u);
  EXPECT_EQ(stats.aggregate.completed, stream.size());
  ASSERT_EQ(stats.per_tenant.size(), 3u);
  std::size_t completed_sum = 0;
  for (std::size_t shard = 0; shard < stats.per_tenant.size(); ++shard) {
    const auto& t = stats.per_tenant[shard];
    completed_sum += t.stats.completed;
    // Screening work is bounded by the shard's own anchor count — the
    // whole point of sharding the anchor database.
    const std::size_t shard_anchors =
        engine.tenant_screen(t.tenant).num_anchors();
    EXPECT_GT(shard_anchors, 0u);
    EXPECT_EQ(t.stats.screened, t.stats.completed);
    EXPECT_LE(t.stats.anchors_scanned, t.stats.screened * shard_anchors);
  }
  EXPECT_EQ(completed_sum, stream.size());
}

TEST(Engine, FallbackChainAndTypedReject) {
  const auto& fleet = small_fleet();
  ModelRegistry reg = small_fleet_registry(1);
  ServeEngine engine(reg.publish(), EngineConfig{});
  const Tensor x = fleet[0].device_tests[0].normalized();

  // Unknown device profile falls back to the venue's OP3 tenant.
  auto fb = engine.submit({"venue-a", 0, "S7"}, row_of(x, 0));
  EXPECT_EQ(fb.admission, Admission::Accepted);
  EXPECT_EQ(fb.decision.status, RouteDecision::Status::Fallback);
  EXPECT_EQ(fb.decision.resolved, (TenantKey{"venue-a", 0, "OP3"}));
  EXPECT_TRUE(fb.result.get().localized);

  // Unknown building / floor: deterministic typed reject with an
  // already-fulfilled future — never another venue's model.
  for (const TenantKey& bad :
       {TenantKey{"venue-z", 0, "OP3"}, TenantKey{"venue-a", 3, "OP3"}}) {
    auto rej = engine.submit(bad, row_of(x, 0));
    EXPECT_EQ(rej.admission, Admission::Rejected);
    EXPECT_EQ(rej.decision.status, RouteDecision::Status::Reject);
    ASSERT_EQ(rej.result.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const ServeResult r = rej.result.get();
    EXPECT_FALSE(r.localized);
    EXPECT_EQ(r.verdict, Verdict::Reject);
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.route_fallback, 1u);
  EXPECT_EQ(stats.route_rejected, 2u);
  // Rejected routes never reach a queue.
  EXPECT_EQ(stats.aggregate.submitted, 1u);
  engine.shutdown();
}

TEST(Engine, TenantLocalThresholdsAndStatsIsolation) {
  const auto& fleet = small_fleet();
  ModelRegistry reg;
  for (std::size_t v = 0; v < 2; ++v) {
    TenantSpec spec = venue_spec(fleet[v], 1);
    if (v == 0) {
      // Tenant-local zero thresholds: venue-a rejects everything off the
      // exact anchor manifold while venue-b keeps accepting.
      spec.service.screening.flag_distance = 0.0;
      spec.service.screening.reject_distance = 0.0;
    }
    reg.register_tenant({fleet[v].building_spec.name, 0, "OP3"},
                        std::move(spec));
  }
  ServeEngine engine(reg.publish(), EngineConfig{});

  const Tensor xa = fleet[0].device_tests[0].normalized();
  const Tensor xb = fleet[1].device_tests[0].normalized();
  for (std::size_t i = 0; i < 10; ++i) {
    auto ra = submit_blocking(engine, {"venue-a", 0, "OP3"}, row_of(xa, i));
    auto rb = submit_blocking(engine, {"venue-b", 0, "OP3"}, row_of(xb, i));
    EXPECT_FALSE(ra.result.get().localized) << "venue-a rejects all";
    EXPECT_TRUE(rb.result.get().localized) << "venue-b accepts";
  }
  engine.shutdown();

  const auto stats = engine.stats();
  ASSERT_EQ(stats.per_tenant.size(), 2u);
  // Tenant order is str()-sorted: venue-a before venue-b.
  EXPECT_EQ(stats.per_tenant[0].tenant.building, "venue-a");
  EXPECT_EQ(stats.per_tenant[0].stats.rejected, 10u);
  EXPECT_EQ(stats.per_tenant[1].stats.rejected, 0u);
  EXPECT_EQ(stats.aggregate.rejected, 10u);
}

TEST(Engine, OverQuotaIsTypedAndCounted) {
  ModelRegistry reg;
  TenantSpec spec = const_spec(7);
  spec.service.quota.rate_per_s = 0.001;  // effectively no refill in-test
  spec.service.quota.burst = 2.0;
  reg.register_tenant({"venue", 0, ""}, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);
  const TenantKey key{"venue", 0, ""};

  auto a1 = engine.submit(key, tiny_fp());
  auto a2 = engine.submit(key, tiny_fp());
  EXPECT_EQ(a1.admission, Admission::Accepted);
  EXPECT_EQ(a2.admission, Admission::Accepted);
  auto denied = engine.submit(key, tiny_fp());
  EXPECT_EQ(denied.admission, Admission::OverQuota);
  // The routing still resolved — the denial is admission, not a miss.
  EXPECT_EQ(denied.decision.status, RouteDecision::Status::Exact);
  ASSERT_EQ(denied.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_FALSE(denied.result.get().localized);
  // Wait for the accepted pair BEFORE shutdown: with typed-shutdown
  // semantics, still-queued requests would be shed (ServeStatus::ShutDown)
  // and rolled back out of `submitted`.
  EXPECT_EQ(a1.result.get().status, ServeStatus::Served);
  EXPECT_EQ(a2.result.get().status, ServeStatus::Served);
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].stats.over_quota, 1u);
  EXPECT_EQ(stats.per_tenant[0].stats.submitted, 2u);
  EXPECT_EQ(stats.aggregate.over_quota, 1u);
}

TEST(Engine, QueueFullIsTypedAndQuotaStallsAreNotBilledAsLatency) {
  std::promise<void> open_gate;
  GateLocalizer gate(open_gate.get_future().share(), 7);

  ModelRegistry reg;
  TenantSpec spec;
  spec.shared_model = &gate;
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 1;  // one slot, engine serializes on it
  spec.service.max_batch = 1;
  spec.service.queue_capacity = 1;
  // Tiny refill with a 3-token burst: enough for R1..R3's admissions,
  // but only if QueueFull denials REFUND their token (see below).
  spec.service.quota.rate_per_s = 0.001;
  spec.service.quota.burst = 3.0;
  reg.register_tenant({"venue", 0, ""}, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);
  const TenantKey key{"venue", 0, ""};

  // R1 admitted and claimed by the (now gate-blocked) worker.
  auto r1 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r1.admission, Admission::Accepted);
  // R2 admitted once R1 leaves the queue; it then occupies the single
  // queue slot for as long as the gate is closed.
  EngineSubmission r2 = submit_blocking(engine, key, tiny_fp());
  ASSERT_EQ(r2.admission, Admission::Accepted);

  // R3 is refused, typed, with a ready future — submit() never blocks.
  auto r3_denied = engine.submit(key, tiny_fp());
  EXPECT_EQ(r3_denied.admission, Admission::QueueFull);
  ASSERT_EQ(r3_denied.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_FALSE(r3_denied.result.get().localized);
  // QueueFull must not drain the quota: every denial refunds its token,
  // so repeated refusals stay QueueFull instead of decaying into
  // OverQuota (the bucket has no meaningful refill in this test).
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(engine.submit(key, tiny_fp()).admission, Admission::QueueFull);

  // The client stalls at the door (denied admission) for a while...
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  open_gate.set_value();
  // ...and is eventually admitted. Its latency clock starts at THIS
  // admission, not at the first refused attempt.
  EngineSubmission r3 = submit_blocking(engine, key, tiny_fp());
  ASSERT_EQ(r3.admission, Admission::Accepted);

  const ServeResult res1 = r1.result.get();
  const ServeResult res3 = r3.result.get();
  // R1 was admitted before the stall and served after the gate opened:
  // queueing + inference time IS billed.
  EXPECT_GE(res1.latency_ms, 120.0);
  // R3's pre-admission stall is NOT billed — with the gate open it is
  // served in milliseconds.
  EXPECT_LE(res3.latency_ms, 60.0);
  EXPECT_LT(res3.latency_ms, res1.latency_ms);
  engine.shutdown();
  EXPECT_GE(engine.stats().per_tenant[0].stats.queue_full, 1u);
}

TEST(Engine, PublishWhileQueueNonEmptyServesQueuedOnNewSnapshot) {
  std::promise<void> open_gate;
  std::promise<void> entered;
  GateLocalizer gate(open_gate.get_future().share(), 7, &entered);

  ModelRegistry reg;
  TenantSpec spec;
  spec.shared_model = &gate;
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 1;
  spec.service.max_batch = 1;
  spec.service.queue_capacity = 8;
  reg.register_tenant({"venue", 0, ""}, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);
  const TenantKey key{"venue", 0, ""};

  auto r1 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r1.admission, Admission::Accepted);
  // Wait until the worker has actually claimed R1 (it is blocked inside
  // predict), so R2/R3 are demonstrably QUEUED, not in flight.
  entered.get_future().wait();
  auto r2 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r2.admission, Admission::Accepted);
  auto r3 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r3.admission, Admission::Accepted);

  // Hot reload while the tenant's queue is non-empty: replicas become
  // ConstLocalizer(42).
  reg.reload_tenant(key, const_spec(42));
  engine.deploy(reg.publish());

  open_gate.set_value();
  // In-flight work finishes on the OLD deployment...
  EXPECT_EQ(r1.result.get().rp, 7u);
  // ...queued requests are claimed after the swap and run on the NEW one.
  EXPECT_EQ(r2.result.get().rp, 42u);
  EXPECT_EQ(r3.result.get().rp, 42u);
  engine.shutdown();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.deploys, 1u);
  EXPECT_EQ(stats.reload_flushes, 1u);
  EXPECT_EQ(stats.per_tenant[0].stats.completed, 3u);
}

TEST(Engine, IdenticalRepublishIsNoOpFlushWise) {
  const auto& sc = small_fleet()[0];
  ModelRegistry reg;
  TenantSpec spec = venue_spec(sc, 1);
  spec.service.cache_capacity = 32;
  spec.service.drift.window = 4;
  reg.register_tenant({"venue-a", 0, "OP3"}, std::move(spec));
  ServeEngine engine(reg.publish(), EngineConfig{});
  const TenantKey key{"venue-a", 0, "OP3"};
  const Tensor x = sc.device_tests[0].normalized();

  // Warm the cache and complete a drift window to pin a baseline.
  for (int i = 0; i < 6; ++i)
    submit_blocking(engine, key, row_of(x, 0)).result.get();
  EXPECT_GT(engine.tenant_cache(key).size(), 0u);
  const DriftTrend before = engine.tenant_drift(key);
  EXPECT_GE(before.windows_completed, 1u);
  EXPECT_GE(before.baseline_mean, 0.0);

  // Double-publish of an identical catalogue: MUST be a no-op flush-wise.
  engine.deploy(reg.publish());
  EXPECT_TRUE(
      submit_blocking(engine, key, row_of(x, 0)).result.get().from_cache)
      << "identical republish must not flush the tenant cache";
  const DriftTrend after = engine.tenant_drift(key);
  EXPECT_EQ(after.baseline_mean, before.baseline_mean)
      << "identical republish must not reset the drift baseline";
  engine.shutdown();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.deploys, 1u);
  EXPECT_EQ(stats.reload_flushes, 0u);
  EXPECT_EQ(stats.snapshot_epoch, 2u);  // fresh epoch, zero flushes
  // The trend is exported per tenant for operators.
  EXPECT_TRUE(stats.per_tenant[0].drift.enabled);
  EXPECT_EQ(stats.per_tenant[0].drift.baseline_mean, before.baseline_mean);
}

TEST(Engine, ReloadFlushesOnlyTheReloadedTenant) {
  const auto& fleet = small_fleet();
  ModelRegistry reg;
  for (std::size_t v = 0; v < 2; ++v) {
    TenantSpec spec = venue_spec(fleet[v], 1);
    spec.service.cache_capacity = 32;
    reg.register_tenant({fleet[v].building_spec.name, 0, "OP3"},
                        std::move(spec));
  }
  ServeEngine engine(reg.publish(), EngineConfig{});
  const TenantKey ka{"venue-a", 0, "OP3"};
  const TenantKey kb{"venue-b", 0, "OP3"};
  const Tensor xa = fleet[0].device_tests[0].normalized();
  const Tensor xb = fleet[1].device_tests[0].normalized();

  for (int i = 0; i < 2; ++i) {
    submit_blocking(engine, ka, row_of(xa, 0)).result.get();
    submit_blocking(engine, kb, row_of(xb, 0)).result.get();
  }
  EXPECT_GT(engine.tenant_cache(ka).size(), 0u);
  EXPECT_GT(engine.tenant_cache(kb).size(), 0u);

  // Retrain-and-reload venue-a only.
  TenantSpec reloaded = venue_spec(fleet[0], 1);
  reloaded.service.cache_capacity = 32;
  reg.reload_tenant(ka, std::move(reloaded));
  engine.deploy(reg.publish());

  EXPECT_FALSE(
      submit_blocking(engine, ka, row_of(xa, 0)).result.get().from_cache)
      << "reloaded tenant must serve from its flushed (empty) cache";
  EXPECT_TRUE(
      submit_blocking(engine, kb, row_of(xb, 0)).result.get().from_cache)
      << "unreloaded tenant's cache must survive the deploy";
  engine.shutdown();
  EXPECT_EQ(engine.stats().reload_flushes, 1u);
}

TEST(Engine, ReloadOfFallbackTargetMidChain) {
  ModelRegistry reg;
  reg.register_tenant({"venue", 0, "OP3"}, const_spec(7));
  reg.set_profile_fallbacks({"OP3"});
  ServeEngine engine(reg.publish(), EngineConfig{});
  // "S7" has no dedicated model: resolves through the chain to OP3.
  const TenantKey s7{"venue", 0, "S7"};

  auto before = engine.submit(s7, tiny_fp());
  EXPECT_EQ(before.decision.status, RouteDecision::Status::Fallback);
  EXPECT_EQ(before.result.get().rp, 7u);

  // Reload the tenant the chain lands on, mid-fallback: the chain keeps
  // resolving and the NEW model serves.
  reg.reload_tenant({"venue", 0, "OP3"}, const_spec(42));
  engine.deploy(reg.publish());

  auto after = engine.submit(s7, tiny_fp());
  EXPECT_EQ(after.decision.status, RouteDecision::Status::Fallback);
  EXPECT_EQ(after.decision.resolved, (TenantKey{"venue", 0, "OP3"}));
  EXPECT_EQ(after.result.get().rp, 42u);
  engine.shutdown();
}

TEST(Engine, RemovedTenantFailsQueuedAndRejectsNew) {
  std::promise<void> open_gate;
  std::promise<void> entered;
  GateLocalizer gate(open_gate.get_future().share(), 7, &entered);

  ModelRegistry reg;
  TenantSpec doomed;
  doomed.shared_model = &gate;
  doomed.num_aps = kTinyAps;
  doomed.service.num_workers = 1;
  doomed.service.max_batch = 1;
  doomed.service.queue_capacity = 8;
  reg.register_tenant({"doomed", 0, ""}, std::move(doomed));
  reg.register_tenant({"kept", 0, ""}, const_spec(9));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);
  const TenantKey key{"doomed", 0, ""};

  auto r1 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r1.admission, Admission::Accepted);
  entered.get_future().wait();  // R1 is in flight, not queued
  auto r2 = engine.submit(key, tiny_fp());  // queued behind the gate
  ASSERT_EQ(r2.admission, Admission::Accepted);

  reg.remove_tenant(key);
  engine.deploy(reg.publish());

  // The queued request fails deterministically at the deploy...
  ASSERT_EQ(r2.result.wait_for(std::chrono::seconds(2)),
            std::future_status::ready);
  EXPECT_FALSE(r2.result.get().localized);
  // ...new submissions are routing misses...
  EXPECT_EQ(engine.submit(key, tiny_fp()).admission, Admission::Rejected);
  // ...and the in-flight batch still completes on the old deployment.
  open_gate.set_value();
  EXPECT_EQ(r1.result.get().rp, 7u);

  const auto stats = engine.stats();
  ASSERT_EQ(stats.per_tenant.size(), 1u);
  EXPECT_EQ(stats.per_tenant[0].tenant, (TenantKey{"kept", 0, ""}));
  engine.shutdown();
}

// ---------------------------------------------------------------------------
// Engine vs. registry-level router agreement
// ---------------------------------------------------------------------------

TEST(Engine, RouteStatusesAgreeWithRegistryRouter) {
  const auto& fleet = small_fleet();
  ModelRegistry reg = small_fleet_registry(1);
  const ShardRouter router(reg);
  EngineConfig cfg;
  cfg.pool_size = 3;
  ServeEngine engine(reg.publish(), cfg);
  EXPECT_EQ(engine.num_tenants(), 3u);
  const Tensor x = fleet[0].device_tests[0].normalized();

  auto exact = submit_blocking(engine, {"venue-a", 0, "OP3"}, row_of(x, 0));
  EXPECT_EQ(exact.decision.status, RouteDecision::Status::Exact);
  EXPECT_TRUE(exact.result.get().localized);

  auto fb = submit_blocking(engine, {"venue-a", 0, "S7"}, row_of(x, 1));
  EXPECT_EQ(fb.decision.status, RouteDecision::Status::Fallback);
  EXPECT_TRUE(fb.result.get().localized);

  auto rej = submit_blocking(engine, {"venue-z", 0, "OP3"}, row_of(x, 0));
  EXPECT_EQ(rej.decision.status, RouteDecision::Status::Reject);
  EXPECT_FALSE(rej.result.get().localized);

  // The offline ShardRouter snapshot agrees with the live engine's
  // routing, decision for decision.
  EXPECT_EQ(router.route({"venue-a", 0, "S7"}).status,
            RouteDecision::Status::Fallback);

  engine.shutdown();
  engine.shutdown();  // idempotent
  const auto stats = engine.stats();
  EXPECT_EQ(stats.route_exact, 1u);
  EXPECT_EQ(stats.route_fallback, 1u);
  EXPECT_EQ(stats.route_rejected, 1u);
  EXPECT_EQ(stats.aggregate.completed, 2u);
}

TEST(Engine, MetricsScrapeRoundTrip) {
  ModelRegistry reg;
  const TenantKey kx{"venue-mx", 0, "OP3"};
  const TenantKey ky{"venue-my", 0, "OP3"};
  reg.register_tenant(kx, const_spec(1));
  reg.register_tenant(ky, const_spec(2));
  reg.set_profile_fallbacks({"OP3"});
  ServeEngine engine(reg.publish(), EngineConfig{});

  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(
        submit_blocking(engine, kx, tiny_fp()).result.get().localized);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(
        submit_blocking(engine, ky, tiny_fp()).result.get().localized);
  // Bump the epoch so the exported gauge is distinguishable from the
  // initial snapshot's.
  reg.reload_tenant(kx, const_spec(1));
  engine.deploy(reg.publish());

  const obs::MetricsRegistry m = engine.metrics();
  const auto stats = engine.stats();

  // Registry lookups agree with stats(): per-tenant admission counters,
  // queue depth, the latency histogram, and the deploy epoch.
  const auto* ax =
      m.find("cal_serve_admissions_total",
             {{"tenant", "venue-mx/0:OP3"}, {"outcome", "accepted"}});
  ASSERT_NE(ax, nullptr);
  EXPECT_EQ(ax->value, 6.0);
  const auto* ay =
      m.find("cal_serve_admissions_total",
             {{"tenant", "venue-my/0:OP3"}, {"outcome", "accepted"}});
  ASSERT_NE(ay, nullptr);
  EXPECT_EQ(ay->value, 3.0);
  const auto* oq =
      m.find("cal_serve_admissions_total",
             {{"tenant", "venue-mx/0:OP3"}, {"outcome", "over_quota"}});
  ASSERT_NE(oq, nullptr);
  EXPECT_EQ(oq->value, 0.0);
  const auto* qd =
      m.find("cal_serve_queue_depth", {{"tenant", "venue-my/0:OP3"}});
  ASSERT_NE(qd, nullptr);
  EXPECT_EQ(qd->value, 0.0);  // drained: every submission completed
  const auto* lat =
      m.find("cal_serve_latency_ms", {{"tenant", "venue-mx/0:OP3"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count(), 6u);
  EXPECT_GE(lat->hist.quantile(0.99), lat->hist.quantile(0.5));
  const auto* ep = m.find("cal_serve_deploy_epoch");
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->value, static_cast<double>(stats.snapshot_epoch));
  EXPECT_EQ(ep->value, 2.0);

  // The Prometheus text exposition carries the same figures.
  const std::string text = m.prometheus_text();
  const auto npos = std::string::npos;
  EXPECT_NE(text.find("# TYPE cal_serve_admissions_total counter\n"), npos);
  EXPECT_NE(text.find("cal_serve_admissions_total{tenant=\"venue-mx/0:OP3\","
                      "outcome=\"accepted\"} 6\n"),
            npos);
  EXPECT_NE(
      text.find("cal_serve_latency_ms_count{tenant=\"venue-mx/0:OP3\"} 6\n"),
      npos);
  EXPECT_NE(text.find("cal_serve_latency_ms_bucket{tenant=\"venue-mx/0:OP3\","
                      "le=\"+Inf\"} 6\n"),
            npos);
  EXPECT_NE(text.find("cal_serve_deploy_epoch 2\n"), npos);
  EXPECT_NE(text.find("cal_serve_deploys_total 1\n"), npos);

  // And the JSON export, with convenience percentiles on histograms.
  const std::string json = m.json();
  EXPECT_NE(json.find("\"name\":\"cal_serve_admissions_total\""), npos);
  EXPECT_NE(json.find("\"tenant\":\"venue-mx/0:OP3\""), npos);
  EXPECT_NE(json.find("\"name\":\"cal_serve_latency_ms\""), npos);
  EXPECT_NE(json.find("\"p99\":"), npos);
  EXPECT_NE(json.find("\"name\":\"cal_serve_deploy_epoch\""), npos);
  engine.shutdown();
}

TEST(Engine, MixedPrecisionTenantsCoexist) {
  // One venue served twice: an fp32 tenant and an int8 tenant built from
  // the SAME trained artefact (precision = Int8 quantizes each replica at
  // publish()). The int8 lane must not perturb the fp32 lane: routing,
  // screening, and bit-identity with sequential fp32 predict all hold,
  // while the int8 tenant serves its own (deterministic) quantized
  // predictions at a fraction of the resident weight bytes.
  const auto& sc = scenario();
  const Tensor anchors = anchor_database_from(sc.train);
  const TenantKey kf{"venue-mp", 0, "fp32"};
  const TenantKey kq{"venue-mp", 0, "int8"};

  ModelRegistry reg;
  {
    TenantSpec spec;
    spec.factory = calloc_factory();
    spec.num_aps = sc.train.num_aps();
    spec.anchors = anchors;
    spec.service.num_workers = 2;
    spec.service.max_batch = 8;
    spec.service.queue_capacity = 64;
    reg.register_tenant(kf, std::move(spec));
  }
  {
    TenantSpec spec;
    spec.factory = calloc_factory();
    spec.num_aps = sc.train.num_aps();
    spec.anchors = anchors;
    spec.service.num_workers = 2;
    spec.service.max_batch = 8;
    spec.service.queue_capacity = 64;
    spec.precision = Precision::Int8;
    reg.register_tenant(kq, std::move(spec));
  }
  ServeEngine engine(reg.publish(), EngineConfig{});
  ASSERT_EQ(engine.num_tenants(), 2u);

  // Sequential ground truths from fresh replicas of the same artefact.
  const Tensor x = sc.device_tests.front().normalized();
  auto fp32_ref = calloc_factory()();
  const std::vector<std::size_t> want_f = fp32_ref->predict(x);
  auto int8_ref = fp32_ref->quantize_int8();
  ASSERT_NE(int8_ref, nullptr);
  const std::vector<std::size_t> want_q = int8_ref->predict(x);
  // The quantized copy is ~4x smaller and must say so itself.
  ASSERT_GT(fp32_ref->weight_bytes(), 0u);
  EXPECT_LT(int8_ref->weight_bytes(), fp32_ref->weight_bytes() / 2);

  const std::size_t rows = std::min<std::size_t>(x.rows(), 48);
  std::vector<EngineSubmission> sub_f, sub_q;
  for (std::size_t r = 0; r < rows; ++r) {
    sub_f.push_back(submit_blocking(engine, kf, row_of(x, r)));
    sub_q.push_back(submit_blocking(engine, kq, row_of(x, r)));
  }
  std::size_t agree = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(sub_f[r].decision.status, RouteDecision::Status::Exact);
    EXPECT_EQ(sub_q[r].decision.status, RouteDecision::Status::Exact);
    const ServeResult rf = sub_f[r].result.get();
    const ServeResult rq = sub_q[r].result.get();
    ASSERT_TRUE(rf.localized);
    ASSERT_TRUE(rq.localized);
    // fp32 lane: bit-identical to sequential predict, int8 neighbour or
    // not. int8 lane: identical to the sequentially quantized replica
    // (the int8 kernels are exact, so this is deterministic too).
    EXPECT_EQ(rf.rp, want_f[r]) << "fp32 tenant perturbed at row " << r;
    EXPECT_EQ(rq.rp, want_q[r]) << "int8 tenant diverged at row " << r;
    agree += static_cast<std::size_t>(want_f[r] == want_q[r]);
  }
  // Quantization keeps predictions overwhelmingly aligned with fp32.
  EXPECT_GE(agree * 10, rows * 9)
      << "int8 agreed with fp32 on only " << agree << "/" << rows;

  // Both lanes screened their traffic against the shared anchor shard.
  engine.shutdown();
  const auto stats = engine.stats();
  for (const auto& t : stats.per_tenant) {
    EXPECT_EQ(t.stats.completed, rows);
    EXPECT_EQ(t.stats.screened, rows);
  }

  // Precision and resident-weight gauges, straight from the snapshot.
  const obs::MetricsRegistry m = engine.metrics();
  const auto* pf =
      m.find("cal_serve_precision_int8", {{"tenant", kf.str()}});
  const auto* pq =
      m.find("cal_serve_precision_int8", {{"tenant", kq.str()}});
  ASSERT_NE(pf, nullptr);
  ASSERT_NE(pq, nullptr);
  EXPECT_EQ(pf->value, 0.0);
  EXPECT_EQ(pq->value, 1.0);
  const auto* wf = m.find("cal_serve_weight_bytes", {{"tenant", kf.str()}});
  const auto* wq = m.find("cal_serve_weight_bytes", {{"tenant", kq.str()}});
  ASSERT_NE(wf, nullptr);
  ASSERT_NE(wq, nullptr);
  EXPECT_GT(wf->value, 0.0);
  EXPECT_GT(wq->value, 0.0);
  EXPECT_LT(wq->value, wf->value / 2);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("cal_serve_precision_int8{tenant=\"venue-mp/0:int8\"}"
                      " 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cal_serve_weight_bytes{tenant=\"venue-mp/0:fp32\"}"),
            std::string::npos);
}

TEST(Registry, Int8PrecisionRequiresAFactory) {
  // Borrowed shared models cannot be swapped for quantized copies — the
  // registry must refuse the combination at registration time.
  ConstLocalizer shared(1);
  TenantSpec spec;
  spec.shared_model = &shared;
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 1;
  spec.precision = Precision::Int8;
  ModelRegistry reg;
  EXPECT_THROW(reg.register_tenant({"venue-q", 0, ""}, std::move(spec)),
               PreconditionError);
  // And a factory whose models lack a quantized path fails at publish().
  TenantSpec no_path = const_spec(1);
  no_path.precision = Precision::Int8;
  reg.register_tenant({"venue-q", 0, ""}, std::move(no_path));
  EXPECT_THROW(reg.publish(), PreconditionError);
}

TEST(Engine, FlightRecorderTimelineSpansDeploy) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer::instance().set_enabled(true);

  // A venue name no other test uses: the tracer is process-wide, so the
  // tenant hash is this test's filter on shared rings.
  ModelRegistry reg;
  const TenantKey key{"venue-fr", 0, "OP3"};
  reg.register_tenant(key, const_spec(1));
  reg.set_profile_fallbacks({"OP3"});
  EngineConfig cfg;
  cfg.obs.trip_on_deploy = true;
  cfg.obs.recorder.last_n = 0;  // capture whole rings
  ServeEngine engine(reg.publish(), cfg);

  // Distinct fingerprints per request keep every request on the
  // Predict path (no LRU hits), so each one has a full timeline.
  const auto fp_of = [](int i) {
    std::vector<float> fp(kTinyAps);
    for (std::size_t a = 0; a < kTinyAps; ++a)
      fp[a] = 0.01F * static_cast<float>(i) + 0.1F * static_cast<float>(a);
    return fp;
  };
  int next_fp = 0;
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(
        submit_blocking(engine, key, fp_of(next_fp++)).result.get().rp, 1u);

  reg.reload_tenant(key, const_spec(2));
  engine.deploy(reg.publish());  // trip_on_deploy captures here

  ASSERT_GE(engine.flight_recorder().trips(), 1u);
  ASSERT_GE(engine.flight_recorder().dumps(), 1u);
  ASSERT_TRUE(engine.flight_recorder().last_dump().has_value());
  EXPECT_EQ(engine.flight_recorder().last_dump()->reason, "deploy");

  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(
        submit_blocking(engine, key, fp_of(next_fp++)).result.get().rp, 2u);
  engine.shutdown();

  // A second capture now holds the full two-epoch history (rings retain
  // finished worker threads' events).
  ASSERT_TRUE(engine.flight_recorder().trip("test_capture"));
  const obs::FlightDump dump = *engine.flight_recorder().last_dump();

  const std::uint64_t tenant = TenantKeyHash{}(key);
  bool saw_deploy_marker = false;
  std::map<std::uint64_t, std::set<int>> types_by_epoch;
  std::set<std::uint64_t> claimed_batches;
  std::set<std::uint64_t> completed_batches;
  for (const obs::ThreadTrace& t : dump.threads) {
    // Within one thread the ring is ordered oldest -> newest.
    for (std::size_t i = 1; i < t.events.size(); ++i)
      EXPECT_LE(t.events[i - 1].ts_ns, t.events[i].ts_ns);
    for (const obs::TraceEvent& ev : t.events) {
      if (ev.type == obs::EventType::Deploy && ev.epoch == 2)
        saw_deploy_marker = true;
      if (ev.tenant != tenant) continue;
      types_by_epoch[ev.epoch].insert(static_cast<int>(ev.type));
      if (ev.type == obs::EventType::BatchClaim)
        claimed_batches.insert(ev.batch);
      if (ev.type == obs::EventType::Complete) {
        EXPECT_NE(ev.batch, 0u) << "completion outside any batch";
        completed_batches.insert(ev.batch);
      }
    }
  }
  EXPECT_TRUE(saw_deploy_marker) << "deploy() must leave a Deploy event";

  // Both epochs show the full request lifecycle for this tenant: the
  // timeline is coherent across the mid-stream deploy.
  for (const std::uint64_t epoch : {std::uint64_t{1}, std::uint64_t{2}}) {
    ASSERT_TRUE(types_by_epoch.count(epoch)) << "no events in epoch "
                                             << epoch;
    const std::set<int>& seen = types_by_epoch[epoch];
    for (const obs::EventType want :
         {obs::EventType::Admit, obs::EventType::Enqueue,
          obs::EventType::BatchClaim, obs::EventType::ReplicaCheckout,
          obs::EventType::Predict, obs::EventType::Complete}) {
      EXPECT_TRUE(seen.count(static_cast<int>(want)))
          << "epoch " << epoch << " missing "
          << obs::to_string(want);
    }
  }
  // Every completed batch id traces back to a claim event.
  for (const std::uint64_t b : completed_batches)
    EXPECT_TRUE(claimed_batches.count(b))
        << "Complete in batch " << b << " without a BatchClaim";
}

// ---------------------------------------------------------------------------
// Fault containment: deadlines, quarantine, circuit breaker, shutdown
// ---------------------------------------------------------------------------

/// ILocalizer whose predict() always throws — a permanently broken
/// replica, for quarantine and breaker tests.
class ThrowingLocalizer : public baselines::ILocalizer {
 public:
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor&) override {
    throw std::runtime_error("replica is broken");
  }
  std::string name() const override { return "Throwing"; }
};

/// ILocalizer that throws while the shared `broken` flag is set and
/// serves a constant label once it clears — for breaker recovery tests.
class FlakyLocalizer : public baselines::ILocalizer {
 public:
  FlakyLocalizer(std::shared_ptr<std::atomic<bool>> broken,
                 std::size_t label)
      : broken_(std::move(broken)), label_(label) {}
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor& x) override {
    if (broken_->load()) throw std::runtime_error("transient outage");
    return std::vector<std::size_t>(x.rows(), label_);
  }
  std::string name() const override { return "Flaky"; }

 private:
  std::shared_ptr<std::atomic<bool>> broken_;
  std::size_t label_;
};

/// KNN-backed localizer that throws whenever the batch contains the
/// poison fingerprint — the batched pass faults, single healthy rows
/// serve, so the engine's per-row containment retry is observable. The
/// gate freezes the first predict() so a test can stage a mixed batch.
class PoisonGateLocalizer : public baselines::ILocalizer {
 public:
  PoisonGateLocalizer(std::shared_future<void> gate,
                      std::vector<float> poison,
                      const data::FingerprintDataset& train,
                      std::promise<void>* entered = nullptr)
      : gate_(std::move(gate)),
        poison_(std::move(poison)),
        inner_(3),
        entered_(entered) {
    inner_.fit(train);
  }
  void fit(const data::FingerprintDataset&) override {}
  std::vector<std::size_t> predict(const Tensor& x) override {
    if (entered_ != nullptr && !entered_fired_.exchange(true))
      entered_->set_value();
    gate_.wait();
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto row = x.row(r);
      if (row.size() == poison_.size() &&
          std::equal(row.begin(), row.end(), poison_.begin()))
        throw std::runtime_error("poison fingerprint");
    }
    return inner_.predict(x);
  }
  std::string name() const override { return "PoisonGate"; }

 private:
  std::shared_future<void> gate_;
  std::vector<float> poison_;
  baselines::Knn inner_;
  std::promise<void>* entered_;
  std::atomic<bool> entered_fired_{false};
};

Tensor one_row(const std::vector<float>& fp) {
  Tensor x({std::size_t{1}, fp.size()});
  std::copy(fp.begin(), fp.end(), x.data());
  return x;
}

/// Poll stats() until `done` or the timeout: promises resolve BEFORE the
/// worker feeds the breaker / bumps trip counters, so tests must wait for
/// post-fulfilment state instead of assuming it after future.get().
template <typename Pred>
bool poll_stats(ServeEngine& engine, Pred done,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(5000)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < give_up) {
    if (done(engine.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done(engine.stats());
}

TEST(Engine, DeadlineExpiredRequestsShedAtDequeue) {
  std::promise<void> open_gate;
  std::promise<void> entered;
  GateLocalizer gate(open_gate.get_future().share(), 7, &entered);
  ModelRegistry reg;
  TenantSpec spec;
  spec.shared_model = &gate;
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 1;
  spec.service.max_batch = 1;
  spec.service.queue_capacity = 8;
  const TenantKey key{"venue-dl", 0, ""};
  reg.register_tenant(key, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);

  // R1 (no deadline) parks the only worker inside predict(), so the next
  // two requests sit in the queue until the gate opens.
  auto r1 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r1.admission, Admission::Accepted);
  entered.get_future().wait();

  const auto now = std::chrono::steady_clock::now();
  auto late = engine.submit(key, tiny_fp(), now - std::chrono::minutes(1));
  ASSERT_EQ(late.admission, Admission::Accepted)
      << "admission is not deadline-checked";
  auto live = engine.submit(key, tiny_fp(), now + std::chrono::hours(1));
  ASSERT_EQ(live.admission, Admission::Accepted);

  open_gate.set_value();
  EXPECT_EQ(r1.result.get().status, ServeStatus::Served);
  const ServeResult expired = late.result.get();
  EXPECT_EQ(expired.status, ServeStatus::Expired);
  EXPECT_FALSE(expired.localized);
  EXPECT_EQ(expired.verdict, Verdict::Accept)
      << "expiry is a latency outcome, not a screening one";
  const ServeResult served = live.result.get();
  EXPECT_EQ(served.status, ServeStatus::Served);
  EXPECT_EQ(served.rp, 7u);
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].stats.submitted, 3u);
  EXPECT_EQ(stats.per_tenant[0].stats.expired, 1u);
  EXPECT_EQ(stats.per_tenant[0].stats.completed, 2u)
      << "an expired request must not enter the latency population";
  EXPECT_EQ(stats.aggregate.expired, 1u);
}

TEST(Engine, ReplicaFaultQuarantinesSlotsAndHealsOnDeploy) {
  ModelRegistry reg;
  TenantSpec spec;
  spec.factory = [] { return std::make_unique<ThrowingLocalizer>(); };
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 2;
  spec.service.max_batch = 4;
  spec.service.queue_capacity = 8;
  const TenantKey key{"venue-qr", 0, ""};
  reg.register_tenant(key, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 2;
  ServeEngine engine(reg.publish(), cfg);

  // Every all-fault batch retires the slot it ran on; sequential faulted
  // requests therefore quarantine both slots, one by one.
  std::size_t faulted_results = 0;
  for (int i = 0; i < 8; ++i) {
    auto sub = engine.submit(key, tiny_fp());
    if (sub.admission == Admission::BreakerOpen) break;  // fully retired
    ASSERT_EQ(sub.admission, Admission::Accepted);
    const ServeResult res = sub.result.get();
    EXPECT_EQ(res.status, ServeStatus::Faulted);
    EXPECT_FALSE(res.localized);
    ++faulted_results;
    if (poll_stats(engine,
                   [](const MultiTenantStats& s) {
                     return s.per_tenant[0].quarantined_slots == 2;
                   },
                   std::chrono::milliseconds(50)))
      break;
  }
  EXPECT_GE(faulted_results, 2u);
  ASSERT_TRUE(poll_stats(engine, [](const MultiTenantStats& s) {
    return s.per_tenant[0].quarantined_slots == 2;
  })) << "both broken slots must end up quarantined";
  EXPECT_GE(engine.flight_recorder().trips(), 2u)
      << "each quarantine trips the flight recorder";

  // A fully quarantined tenant fast-fails with a ready future — no work
  // is queued toward replicas that no longer exist.
  auto denied = engine.submit(key, tiny_fp());
  EXPECT_EQ(denied.admission, Admission::BreakerOpen);
  ASSERT_EQ(denied.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ServeResult dres = denied.result.get();
  EXPECT_EQ(dres.status, ServeStatus::Denied);
  EXPECT_FALSE(dres.localized);

  // Heal: a version-bump redeploy rebuilds the deployment with fresh
  // replicas and a full free list.
  reg.reload_tenant(key, const_spec(5, 2));
  engine.deploy(reg.publish());
  auto healed = engine.submit(key, tiny_fp());
  ASSERT_EQ(healed.admission, Admission::Accepted);
  EXPECT_EQ(healed.result.get().rp, 5u);
  EXPECT_EQ(engine.stats().per_tenant[0].quarantined_slots, 0u);
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_GE(stats.per_tenant[0].stats.faulted, 2u);
  EXPECT_GE(stats.per_tenant[0].stats.breaker_denied, 1u);
}

TEST(Engine, MixedBatchIsolatesPoisonRowBitIdentical) {
  const auto& sc = scenario();
  const std::size_t aps = sc.train.num_aps();
  baselines::Knn seq(3);  // sequential ground truth, identical fit
  seq.fit(sc.train);

  const Tensor x = sc.device_tests[0].normalized();
  const std::vector<float> h0 = row_of(x, 0);
  const std::vector<float> h1 = row_of(x, 1);
  const std::vector<float> h2 = row_of(x, 2);
  const std::vector<float> poison(aps, 0.77F);

  std::promise<void> open_gate;
  std::promise<void> entered;
  auto gate = open_gate.get_future().share();
  ModelRegistry reg;
  TenantSpec spec;
  spec.factory = [&gate, &poison, &sc, &entered] {
    return std::make_unique<PoisonGateLocalizer>(gate, poison, sc.train,
                                                 &entered);
  };
  spec.num_aps = aps;
  spec.service.num_workers = 1;
  spec.service.max_batch = 4;
  spec.service.queue_capacity = 8;
  // An enabled breaker that must NOT move: a poison ROW in a mixed batch
  // is bad input, not a broken replica.
  spec.service.breaker.fault_threshold = 3;
  const TenantKey key{"venue-px", 0, ""};
  reg.register_tenant(key, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);

  // R0 claims the slot and parks in predict(); the poison and two healthy
  // requests then queue up behind it and get claimed as ONE micro-batch.
  auto r0 = engine.submit(key, h0);
  ASSERT_EQ(r0.admission, Admission::Accepted);
  entered.get_future().wait();
  auto rp = engine.submit(key, poison);
  auto ra = engine.submit(key, h1);
  auto rb = engine.submit(key, h2);
  ASSERT_EQ(rp.admission, Admission::Accepted);
  ASSERT_EQ(ra.admission, Admission::Accepted);
  ASSERT_EQ(rb.admission, Admission::Accepted);
  open_gate.set_value();

  EXPECT_EQ(r0.result.get().rp, seq.predict(one_row(h0))[0]);
  const ServeResult pres = rp.result.get();
  EXPECT_EQ(pres.status, ServeStatus::Faulted);
  EXPECT_FALSE(pres.localized);
  // The healthy rows of the faulted micro-batch are served and remain
  // bit-identical to sequential predict() on the same trained model.
  const ServeResult res1 = ra.result.get();
  EXPECT_EQ(res1.status, ServeStatus::Served);
  EXPECT_EQ(res1.rp, seq.predict(one_row(h1))[0]);
  const ServeResult res2 = rb.result.get();
  EXPECT_EQ(res2.status, ServeStatus::Served);
  EXPECT_EQ(res2.rp, seq.predict(one_row(h2))[0]);
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].stats.completed, 3u);
  EXPECT_EQ(stats.per_tenant[0].stats.faulted, 1u);
  EXPECT_EQ(stats.per_tenant[0].quarantined_slots, 0u)
      << "a batch with served rows must not retire its slot";
  EXPECT_EQ(stats.per_tenant[0].breaker.opens, 0u);
  EXPECT_EQ(stats.per_tenant[0].breaker.state,
            CircuitBreaker::State::Closed)
      << "served rows in the same batch reset the fault streak";
}

TEST(Engine, BreakerOpensFastFailsAndRecoversViaProbe) {
  auto broken = std::make_shared<std::atomic<bool>>(true);
  ModelRegistry reg;
  TenantSpec spec;
  spec.factory = [broken] {
    return std::make_unique<FlakyLocalizer>(broken, 6);
  };
  spec.num_aps = kTinyAps;
  // Two slots: the first all-fault batch quarantines the slot it ran on,
  // and the recovery probe needs a healthy one left to run on.
  spec.service.num_workers = 2;
  spec.service.max_batch = 4;
  spec.service.queue_capacity = 8;
  spec.service.breaker.fault_threshold = 1;
  spec.service.breaker.open_for_s = 0.05;
  const TenantKey key{"venue-br", 0, ""};
  reg.register_tenant(key, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 2;
  ServeEngine engine(reg.publish(), cfg);

  auto first = engine.submit(key, tiny_fp());
  ASSERT_EQ(first.admission, Admission::Accepted);
  EXPECT_EQ(first.result.get().status, ServeStatus::Faulted);
  ASSERT_TRUE(poll_stats(engine, [](const MultiTenantStats& s) {
    return s.per_tenant[0].breaker.opens == 1;
  })) << "one all-fault batch at threshold 1 must open the breaker";
  EXPECT_EQ(engine.stats().per_tenant[0].breaker.state,
            CircuitBreaker::State::Open);
  EXPECT_EQ(engine.stats().per_tenant[0].quarantined_slots, 1u);

  // While open: fast-fail, ready future, typed denial.
  auto denied = engine.submit(key, tiny_fp());
  EXPECT_EQ(denied.admission, Admission::BreakerOpen);
  ASSERT_EQ(denied.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(denied.result.get().status, ServeStatus::Denied);

  // Outage over: after the open interval the next submission is admitted
  // as the half-open probe, serves, and closes the breaker.
  broken->store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto probe = engine.submit(key, tiny_fp());
  ASSERT_EQ(probe.admission, Admission::Accepted);
  EXPECT_EQ(probe.result.get().rp, 6u);
  ASSERT_TRUE(poll_stats(engine, [](const MultiTenantStats& s) {
    return s.per_tenant[0].breaker.closes == 1;
  })) << "a served probe must close the breaker";
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].breaker.state,
            CircuitBreaker::State::Closed);
  EXPECT_EQ(stats.per_tenant[0].breaker.opens, 1u);
  EXPECT_EQ(stats.per_tenant[0].breaker.closes, 1u);
  EXPECT_GE(stats.per_tenant[0].stats.breaker_denied, 1u);
}

TEST(CircuitBreaker, StateMachineWithSyntheticClock) {
  using std::chrono::milliseconds;
  BreakerPolicy policy;
  policy.fault_threshold = 3;
  policy.open_for_s = 1.0;
  policy.backoff_factor = 2.0;
  policy.max_open_s = 3.0;
  policy.half_open_probes = 1;
  CircuitBreaker breaker(policy);
  const auto t0 = std::chrono::steady_clock::now();
  const auto at = [&t0](double s) {
    return t0 + std::chrono::duration_cast<std::chrono::steady_clock::
                                               duration>(
                    std::chrono::duration<double>(s));
  };

  ASSERT_TRUE(breaker.enabled());
  EXPECT_TRUE(breaker.try_admit(at(0.0)));

  // Served rows reset the streak: 2 faults + a served batch + 2 faults
  // never reaches the threshold of 3.
  EXPECT_EQ(breaker.on_batch(at(0.1), 1, 0), BreakerTransition::None);
  EXPECT_EQ(breaker.on_batch(at(0.2), 1, 0), BreakerTransition::None);
  EXPECT_EQ(breaker.on_batch(at(0.3), 1, 2), BreakerTransition::None)
      << "a batch with served rows proves the replica works";
  EXPECT_EQ(breaker.on_batch(at(0.4), 1, 0), BreakerTransition::None);
  EXPECT_EQ(breaker.on_batch(at(0.5), 1, 0), BreakerTransition::None);
  EXPECT_EQ(breaker.snapshot().consecutive_faults, 2u);
  EXPECT_TRUE(breaker.try_admit(at(0.5)));

  // Third consecutive all-fault batch: Opened.
  EXPECT_EQ(breaker.on_batch(at(0.6), 2, 0), BreakerTransition::Opened);
  EXPECT_EQ(breaker.snapshot().state, CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.snapshot().opens, 1u);
  EXPECT_FALSE(breaker.try_admit(at(0.7)));
  EXPECT_FALSE(breaker.try_admit(at(1.5)))
      << "still inside the 1 s open interval (opened at 0.6)";
  // Stale results from batches claimed before the open are ignored.
  EXPECT_EQ(breaker.on_batch(at(0.8), 3, 0), BreakerTransition::None);
  EXPECT_EQ(breaker.snapshot().opens, 1u);

  // Interval elapsed: exactly one half-open probe is admitted.
  EXPECT_TRUE(breaker.try_admit(at(1.7)));
  EXPECT_EQ(breaker.snapshot().state, CircuitBreaker::State::HalfOpen);
  EXPECT_FALSE(breaker.try_admit(at(1.8))) << "probe budget exhausted";

  // Probe faults: Reopened, interval doubles to 2 s.
  EXPECT_EQ(breaker.on_batch(at(1.9), 1, 0), BreakerTransition::Reopened);
  EXPECT_EQ(breaker.snapshot().opens, 2u);
  EXPECT_DOUBLE_EQ(breaker.snapshot().current_open_s, 2.0);
  EXPECT_FALSE(breaker.try_admit(at(3.0)));
  EXPECT_TRUE(breaker.try_admit(at(4.0)));

  // Second probe serves: Closed, streak and interval reset.
  EXPECT_EQ(breaker.on_batch(at(4.1), 0, 1), BreakerTransition::Closed);
  EXPECT_EQ(breaker.snapshot().state, CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.snapshot().closes, 1u);
  EXPECT_EQ(breaker.snapshot().consecutive_faults, 0u);
  EXPECT_TRUE(breaker.try_admit(at(4.2)));

  // Backoff caps at max_open_s: three consecutive reopens would want
  // 1 -> 2 -> 4 s, but the cap holds the interval at 3 s.
  for (int i = 0; i < 3; ++i)
    breaker.on_batch(at(5.0 + 0.1 * i), 1, 0);  // Opened at the third
  EXPECT_EQ(breaker.snapshot().state, CircuitBreaker::State::Open);
  EXPECT_TRUE(breaker.try_admit(at(6.5)));   // 1 s interval passed
  breaker.on_batch(at(6.6), 1, 0);           // Reopened: 2 s
  EXPECT_TRUE(breaker.try_admit(at(8.7)));
  breaker.on_batch(at(8.8), 1, 0);           // Reopened: capped at 3 s
  EXPECT_DOUBLE_EQ(breaker.snapshot().current_open_s, 3.0);

  // A probe that vanished (shed, dropped) cannot wedge the breaker: a
  // full backoff interval of probe silence admits a replacement.
  EXPECT_TRUE(breaker.try_admit(at(12.0)));  // HalfOpen, probe out
  EXPECT_FALSE(breaker.try_admit(at(13.0)));
  EXPECT_TRUE(breaker.try_admit(at(15.1)))
      << "replacement probe after a full interval of silence";

  // A default-constructed breaker is disabled and admits everything.
  CircuitBreaker off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.try_admit(at(0.0)));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(off.on_batch(at(0.1), 5, 0), BreakerTransition::None);
  EXPECT_TRUE(off.try_admit(at(0.2)));
}

TEST(Engine, ShutdownFailsQueuedRequestsTyped) {
  std::promise<void> open_gate;
  std::promise<void> entered;
  GateLocalizer gate(open_gate.get_future().share(), 3, &entered);
  ModelRegistry reg;
  TenantSpec spec;
  spec.shared_model = &gate;
  spec.num_aps = kTinyAps;
  spec.service.num_workers = 1;
  spec.service.max_batch = 1;
  spec.service.queue_capacity = 8;
  const TenantKey key{"venue-sd", 0, ""};
  reg.register_tenant(key, std::move(spec));
  EngineConfig cfg;
  cfg.pool_size = 1;
  ServeEngine engine(reg.publish(), cfg);

  auto r1 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r1.admission, Admission::Accepted);
  entered.get_future().wait();  // the worker is mid-batch on R1
  auto r2 = engine.submit(key, tiny_fp());
  auto r3 = engine.submit(key, tiny_fp());
  ASSERT_EQ(r2.admission, Admission::Accepted);
  ASSERT_EQ(r3.admission, Admission::Accepted);

  std::thread stopper([&engine] { engine.shutdown(); });
  // Queued-but-unclaimed requests resolve with the typed terminal status
  // BEFORE the in-flight batch finishes — the gate is still closed, so a
  // blocking drain would deadlock here.
  EXPECT_EQ(r2.result.get().status, ServeStatus::ShutDown);
  EXPECT_EQ(r3.result.get().status, ServeStatus::ShutDown);
  EXPECT_NE(r1.result.wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready)
      << "the in-flight request is still parked on the gate";
  open_gate.set_value();
  stopper.join();
  EXPECT_EQ(r1.result.get().status, ServeStatus::Served);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].stats.completed, 1u);
  EXPECT_EQ(stats.per_tenant[0].stats.shed, 2u);
  EXPECT_EQ(stats.per_tenant[0].stats.submitted, 1u)
      << "shed requests leave the submitted population";
}

TEST(Engine, DestructorUnderLoadResolvesEveryFuture) {
  constexpr std::size_t kRequests = 200;
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(kRequests);
  {
    ModelRegistry reg;
    TenantSpec spec = const_spec(4, 2);
    spec.service.queue_capacity = kRequests + 8;
    const TenantKey key{"venue-dt", 0, ""};
    reg.register_tenant(key, std::move(spec));
    EngineConfig cfg;
    cfg.pool_size = 4;
    ServeEngine engine(reg.publish(), cfg);
    for (std::size_t i = 0; i < kRequests; ++i) {
      auto sub = engine.submit(key, tiny_fp());
      ASSERT_EQ(sub.admission, Admission::Accepted);
      futures.push_back(std::move(sub.result));
    }
  }  // ~ServeEngine runs with most of the queue still pending

  std::size_t served = 0;
  std::size_t shut = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "the destructor must resolve every outstanding future";
    const ServeResult res = f.get();
    if (res.status == ServeStatus::Served) {
      EXPECT_EQ(res.rp, 4u);
      ++served;
    } else {
      EXPECT_EQ(res.status, ServeStatus::ShutDown);
      EXPECT_FALSE(res.localized);
      ++shut;
    }
  }
  EXPECT_EQ(served + shut, kRequests);
}

TEST(Engine, RobustnessMetricsScrapeRoundTrip) {
  ModelRegistry reg;
  const TenantKey kf{"venue-rf", 0, "OP3"};
  const TenantKey kh{"venue-rh", 0, "OP3"};
  TenantSpec faulty;
  faulty.factory = [] { return std::make_unique<ThrowingLocalizer>(); };
  faulty.num_aps = kTinyAps;
  faulty.service.num_workers = 1;
  faulty.service.max_batch = 4;
  faulty.service.queue_capacity = 8;
  faulty.service.breaker.fault_threshold = 1;
  reg.register_tenant(kf, std::move(faulty));
  reg.register_tenant(kh, const_spec(2));
  reg.set_profile_fallbacks({"OP3"});
  ServeEngine engine(reg.publish(), EngineConfig{});

  // One faulted request: opens the breaker AND quarantines the only slot.
  EXPECT_EQ(engine.submit(kf, tiny_fp()).result.get().status,
            ServeStatus::Faulted);
  ASSERT_TRUE(poll_stats(engine, [](const MultiTenantStats& s) {
    return s.per_tenant[0].breaker.opens == 1;
  }));
  EXPECT_EQ(engine.submit(kf, tiny_fp()).admission, Admission::BreakerOpen);

  // One deadline-expired and one served request on the healthy tenant.
  EXPECT_EQ(engine
                .submit(kh, tiny_fp(),
                        std::chrono::steady_clock::now() -
                            std::chrono::minutes(1))
                .result.get()
                .status,
            ServeStatus::Expired);
  EXPECT_TRUE(submit_blocking(engine, kh, tiny_fp()).result.get().localized);
  // Counters are bumped after the promise resolves; wait for the scrape
  // population to settle before reading it.
  ASSERT_TRUE(poll_stats(engine, [](const MultiTenantStats& s) {
    for (const TenantStats& t : s.per_tenant)
      if (t.tenant.building == "venue-rh") return t.stats.expired == 1;
    return false;
  }));

  const obs::MetricsRegistry m = engine.metrics();
  const auto* faulted =
      m.find("cal_serve_faulted_total", {{"tenant", "venue-rf/0:OP3"}});
  ASSERT_NE(faulted, nullptr);
  EXPECT_EQ(faulted->value, 1.0);
  const auto* bo =
      m.find("cal_serve_admissions_total",
             {{"tenant", "venue-rf/0:OP3"}, {"outcome", "breaker_open"}});
  ASSERT_NE(bo, nullptr);
  EXPECT_GE(bo->value, 1.0);
  const auto* quarantined = m.find("cal_serve_replica_slots_quarantined",
                                   {{"tenant", "venue-rf/0:OP3"}});
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value, 1.0);
  const auto* bstate =
      m.find("cal_serve_breaker_state", {{"tenant", "venue-rf/0:OP3"}});
  ASSERT_NE(bstate, nullptr);
  EXPECT_EQ(bstate->value, 1.0);  // 0 closed / 1 open / 2 half-open
  const auto* opens = m.find("cal_serve_breaker_opens_total",
                             {{"tenant", "venue-rf/0:OP3"}});
  ASSERT_NE(opens, nullptr);
  EXPECT_EQ(opens->value, 1.0);
  const auto* expired =
      m.find("cal_serve_expired_total", {{"tenant", "venue-rh/0:OP3"}});
  ASSERT_NE(expired, nullptr);
  EXPECT_EQ(expired->value, 1.0);

  // The same figures ride both exposition formats.
  const std::string text = m.prometheus_text();
  const auto npos = std::string::npos;
  EXPECT_NE(
      text.find("cal_serve_faulted_total{tenant=\"venue-rf/0:OP3\"} 1\n"),
      npos);
  EXPECT_NE(
      text.find("cal_serve_breaker_state{tenant=\"venue-rf/0:OP3\"} 1\n"),
      npos);
  EXPECT_NE(
      text.find("cal_serve_expired_total{tenant=\"venue-rh/0:OP3\"} 1\n"),
      npos);
  EXPECT_NE(text.find("# TYPE cal_serve_breaker_opens_total counter\n"),
            npos);
  const std::string json = m.json();
  EXPECT_NE(json.find("\"name\":\"cal_serve_breaker_state\""), npos);
  EXPECT_NE(json.find("\"name\":\"cal_serve_shed_total\""), npos);
  EXPECT_NE(json.find("\"name\":\"cal_serve_replica_slots_quarantined\""),
            npos);
  engine.shutdown();
}

TEST(Engine, FaultPointQueuePushContainmentKeepsEngineHealthy) {
  if (!kFaultInjectionCompiledIn)
    GTEST_SKIP() << "fault injection compiled out";
  ModelRegistry reg;
  const TenantKey key{"venue-fi", 0, ""};
  reg.register_tenant(key, const_spec(8));
  ServeEngine engine(reg.publish(), EngineConfig{});

  FaultRegistry::instance().arm_one_shot("serve.queue_push");
  EXPECT_THROW(engine.submit(key, tiny_fp()), InjectedFault);
  FaultRegistry::instance().disarm_all();

  // The rollback left no trace: the engine still serves, and the faulted
  // call never entered the submitted population (its quota token was
  // refunded and the worker wake count rolled back).
  EXPECT_EQ(engine.submit(key, tiny_fp()).result.get().rp, 8u);
  engine.shutdown();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_tenant[0].stats.submitted, 1u);
  EXPECT_EQ(stats.per_tenant[0].stats.completed, 1u);
}

TEST(Engine, FaultPointDeployContainmentKeepsOldSnapshot) {
  if (!kFaultInjectionCompiledIn)
    GTEST_SKIP() << "fault injection compiled out";
  ModelRegistry reg;
  const TenantKey key{"venue-fd", 0, ""};
  reg.register_tenant(key, const_spec(1));
  ServeEngine engine(reg.publish(), EngineConfig{});
  EXPECT_EQ(engine.submit(key, tiny_fp()).result.get().rp, 1u);
  const std::uint64_t epoch_before = engine.snapshot()->epoch();

  reg.reload_tenant(key, const_spec(2));
  auto next = reg.publish();
  FaultRegistry::instance().arm_one_shot("serve.deploy");
  EXPECT_THROW(engine.deploy(next), InjectedFault);
  FaultRegistry::instance().disarm_all();

  // Strong exception safety: the old snapshot keeps serving untouched,
  // and a clean retry of the same deploy succeeds.
  EXPECT_EQ(engine.snapshot()->epoch(), epoch_before);
  EXPECT_EQ(engine.submit(key, tiny_fp()).result.get().rp, 1u);
  engine.deploy(next);
  EXPECT_EQ(engine.submit(key, tiny_fp()).result.get().rp, 2u);
  engine.shutdown();
}

}  // namespace
