// Serving-engine tests: queue semantics, cache behaviour, screening, and
// the headline guarantee — concurrent batched serving is bit-identical to
// sequential predict() on the same trained model.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>

#include "attacks/attack.hpp"
#include "common/ensure.hpp"
#include "core/calloc.hpp"
#include "serve/lru_cache.hpp"
#include "serve/queue.hpp"
#include "serve/screening.hpp"
#include "serve/service.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;
using namespace cal::serve;

// ---------------------------------------------------------------------------
// Shared trained model: one curriculum run reused by every service test.
// ---------------------------------------------------------------------------

const sim::Scenario& scenario() {
  static const sim::Scenario sc = [] {
    sim::BuildingSpec spec;
    spec.name = "serve-test";
    spec.num_aps = 24;
    spec.path_length_m = 14;
    spec.seed = 313;
    return sim::make_scenario(spec, 999);
  }();
  return sc;
}

core::CallocConfig fast_cfg(std::uint64_t seed = 71) {
  core::CallocConfig cfg;
  cfg.seed = seed;
  cfg.num_lessons = 5;
  cfg.train.max_epochs_per_lesson = 6;
  return cfg;
}

struct TrainedModel {
  core::Calloc model{fast_cfg()};
  std::string weights_path;

  TrainedModel() {
    model.fit(scenario().train);
    weights_path = (std::filesystem::temp_directory_path() /
                    "cal_serve_test_weights.bin")
                       .string();
    model.save_weights(weights_path);
  }
  ~TrainedModel() { std::remove(weights_path.c_str()); }
};

TrainedModel& trained() {
  static TrainedModel tm;
  return tm;
}

/// Replica factory: deploy the one trained artefact into fresh models.
ReplicaFactory calloc_factory() {
  return [] {
    auto replica = std::make_unique<core::Calloc>(fast_cfg());
    replica->load_weights(trained().weights_path, scenario().train);
    return replica;
  };
}

std::vector<float> row_of(const Tensor& x, std::size_t r) {
  const auto row = x.row(r);
  return {row.begin(), row.end()};
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoAndBatchCap) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(int{i}));
  EXPECT_EQ(q.size(), 5u);
  const auto first = q.pop_batch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 0);
  EXPECT_EQ(first[2], 2);
  const auto rest = q.pop_batch(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[1], 4);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop_batch(4).size(), 1u);   // drain survivors
  EXPECT_TRUE(q.pop_batch(4).empty());    // closed-and-drained sentinel
}

TEST(BoundedQueue, FullQueueBlocksUntilDrained) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // must block until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop_batch(1).size(), 1u);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), PreconditionError);
}

// ---------------------------------------------------------------------------
// FingerprintCache
// ---------------------------------------------------------------------------

TEST(FingerprintCache, QuantizationGroupsJitteredScans) {
  FingerprintCache cache(8, 0.01F);
  const std::vector<float> a{0.500F, 0.300F, 0.700F};
  const std::vector<float> jittered{0.501F, 0.299F, 0.702F};  // < step/2 off
  const std::vector<float> elsewhere{0.100F, 0.900F, 0.200F};
  EXPECT_EQ(cache.make_key(a), cache.make_key(jittered));
  EXPECT_NE(cache.make_key(a), cache.make_key(elsewhere));
}

TEST(FingerprintCache, LruEvictionOrder) {
  FingerprintCache cache(2, 0.01F);
  const auto k1 = cache.make_key(std::vector<float>{0.1F});
  const auto k2 = cache.make_key(std::vector<float>{0.2F});
  const auto k3 = cache.make_key(std::vector<float>{0.3F});
  cache.insert(k1, 11);
  cache.insert(k2, 22);
  ASSERT_TRUE(cache.lookup(k1).has_value());  // bump k1 to MRU
  cache.insert(k3, 33);                       // evicts k2 (LRU)
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_EQ(cache.lookup(k1).value_or(999), 11u);
  EXPECT_EQ(cache.lookup(k3).value_or(999), 33u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FingerprintCache, ZeroCapacityDisables) {
  FingerprintCache cache(0, 0.01F);
  EXPECT_FALSE(cache.enabled());
  const auto k = cache.make_key(std::vector<float>{0.5F});
  cache.insert(k, 1);
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_THROW(FingerprintCache(4, 0.0F), PreconditionError);
}

// ---------------------------------------------------------------------------
// Screening
// ---------------------------------------------------------------------------

TEST(Screening, DistanceAndClassification) {
  const Tensor anchors = Tensor::from_rows({{0.5F, 0.5F}, {0.2F, 0.8F}});
  ScreeningThresholds th;
  th.flag_distance = 0.1;
  th.reject_distance = 0.3;
  const AnchorScreen screen(anchors, th);
  // Exactly on an anchor: distance 0, accepted.
  EXPECT_NEAR(screen.distance(std::vector<float>{0.2F, 0.8F}), 0.0, 1e-9);
  EXPECT_EQ(screen.classify(0.05), Verdict::Accept);
  EXPECT_EQ(screen.classify(0.2), Verdict::Flag);
  EXPECT_EQ(screen.classify(0.5), Verdict::Reject);
  // RMS-per-AP scale: (0.6,0.5) is 0.1 away from (0.5,0.5) in one of two
  // coordinates -> sqrt(0.01/2).
  EXPECT_NEAR(screen.distance(std::vector<float>{0.6F, 0.5F}),
              std::sqrt(0.01 / 2.0), 1e-6);
  EXPECT_THROW(AnchorScreen(anchors, {0.5, 0.1}), PreconditionError);
}

TEST(Screening, DisabledScreenAcceptsEverything) {
  const AnchorScreen screen;
  EXPECT_FALSE(screen.enabled());
  EXPECT_EQ(screen.distance(std::vector<float>{9.0F}), 0.0);
  EXPECT_EQ(screen.classify(1e9), Verdict::Accept);
}

TEST(Screening, CalibrationBoundsCleanData) {
  const auto& train = scenario().train;
  const Tensor anchors = anchor_database_from(train);
  const Tensor clean = train.normalized();
  const auto th = calibrate_thresholds(anchors, clean, 95.0, 2.0);
  EXPECT_GT(th.flag_distance, 0.0);
  EXPECT_NEAR(th.reject_distance, 2.0 * th.flag_distance, 1e-12);
  // At the 95th-percentile cutoff, roughly 5% of the calibration data
  // itself sits above the flag line — never more than ~10% of it.
  std::size_t above = 0;
  for (std::size_t i = 0; i < clean.rows(); ++i)
    if (anchor_distance(anchors, clean.row(i)) > th.flag_distance) ++above;
  EXPECT_LE(above, clean.rows() / 10);
}

// ---------------------------------------------------------------------------
// LocalizationService
// ---------------------------------------------------------------------------

TEST(Service, ConcurrentBatchedMatchesSequentialBitIdentical) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  const auto expected = trained().model.predict(x);

  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.cache_capacity = 0;  // every request must hit the model
  LocalizationService service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 64;
  struct Outcome {
    std::size_t row;
    std::future<ServeResult> fut;
  };
  std::vector<std::vector<Outcome>> outcomes(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t row = (c * 7 + i * 3) % x.rows();
        outcomes[c].push_back({row, service.submit(row_of(x, row))});
      }
    });
  }
  for (auto& t : clients) t.join();

  for (auto& per_client : outcomes) {
    for (auto& o : per_client) {
      const ServeResult r = o.fut.get();
      EXPECT_TRUE(r.localized);
      EXPECT_EQ(r.verdict, Verdict::Accept);
      EXPECT_EQ(r.rp, expected[o.row]) << "row " << o.row;
      EXPECT_GE(r.latency_ms, 0.0);
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(Service, SharedModeSerializesOneModel) {
  const auto& test = scenario().device_tests.front();
  const Tensor x = test.normalized();
  const auto expected = trained().model.predict(x);

  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  LocalizationService service(trained().model, test.num_aps(), Tensor{},
                              cfg);
  std::vector<std::future<ServeResult>> futs;
  for (std::size_t i = 0; i < x.rows(); ++i)
    futs.push_back(service.submit(row_of(x, i)));
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get().rp, expected[i]) << "row " << i;
}

TEST(Service, MicroBatchingCoalescesBacklog) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  ServiceConfig cfg;
  cfg.num_workers = 1;  // single worker => backlog must coalesce
  cfg.max_batch = 16;
  cfg.queue_capacity = 128;
  LocalizationService service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);
  std::vector<std::future<ServeResult>> futs;
  for (std::size_t i = 0; i < 64; ++i)
    futs.push_back(service.submit(row_of(x, i % x.rows())));
  for (auto& f : futs) f.get();
  service.shutdown();
  const auto stats = service.stats();
  EXPECT_GT(stats.largest_batch, 1u)
      << "a single busy worker should drain queued requests in batches";
  EXPECT_LT(stats.batches, 64u);
}

TEST(Service, CacheServesRepeatTrafficAndAuditAgrees) {
  const auto& test = scenario().device_tests.back();
  const Tensor x = test.normalized();
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.cache_capacity = 32;
  cfg.cache_audit_rate = 0.5;  // audit half the hits against the model
  LocalizationService service(calloc_factory(), test.num_aps(), Tensor{},
                              cfg);

  const auto fp = row_of(x, 0);
  const std::size_t first = service.submit(fp).get().rp;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(service.submit(fp));
  std::size_t hits = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_EQ(r.rp, first);  // cached or recomputed, same answer
    if (r.from_cache) ++hits;
  }
  service.shutdown();
  const auto stats = service.stats();
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(stats.cache_hits, hits);
  EXPECT_GT(stats.cache_audits, 0u);
  EXPECT_EQ(stats.cache_audit_mismatches, 0u)
      << "auditing a stationary device must agree with the cache";
}

TEST(Service, ScreeningFlagsPgdTrafficMoreThanClean) {
  const auto& test = scenario().device_tests[1];
  const Tensor clean = test.normalized();
  attacks::AttackConfig atk;
  atk.epsilon = 0.3;
  atk.phi_percent = 100.0;
  atk.num_steps = 8;
  const Tensor attacked =
      attacks::pgd_attack(*trained().model.gradient_source(), clean,
                          test.labels(), atk);

  // Calibrate on a clean *online* capture spanning the device fleet —
  // the offline train set alone is too tight once session drift and
  // device heterogeneity kick in (its P95 sits below every test device).
  data::FingerprintDataset fleet = scenario().device_tests.front();
  for (std::size_t d = 1; d < scenario().device_tests.size(); ++d)
    fleet.merge(scenario().device_tests[d]);

  const Tensor anchors = trained().model.model().anchor_matrix();
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.screening =
      calibrate_thresholds(anchors, fleet.normalized(), 95.0, 3.0);
  LocalizationService service(calloc_factory(), test.num_aps(), anchors,
                              cfg);

  auto suspicious_rate = [&](const Tensor& batch) {
    std::vector<std::future<ServeResult>> futs;
    for (std::size_t i = 0; i < batch.rows(); ++i)
      futs.push_back(service.submit(row_of(batch, i)));
    std::size_t suspicious = 0;
    for (auto& f : futs) {
      const auto r = f.get();
      if (r.verdict != Verdict::Accept) ++suspicious;
      EXPECT_EQ(r.localized, r.verdict != Verdict::Reject);
    }
    return static_cast<double>(suspicious) /
           static_cast<double>(batch.rows());
  };

  const double clean_rate = suspicious_rate(clean);
  const double attacked_rate = suspicious_rate(attacked);
  EXPECT_GT(attacked_rate, clean_rate)
      << "PGD fingerprints must be flagged more often than clean ones";
  EXPECT_GT(attacked_rate, 0.5)
      << "eps=0.3 over all APs should leave the clean manifold";
  EXPECT_GT(service.stats().flagged + service.stats().rejected, 0u);
}

TEST(Service, ValidatesInputsAndShutdownIsFinal) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  LocalizationService service(trained().model,
                              scenario().train.num_aps(), Tensor{}, cfg);
  EXPECT_THROW(service.submit(std::vector<float>{0.5F}), PreconditionError);
  // Non-finite fingerprints from the untrusted channel are rejected at
  // submit(): a NaN would poison the batched forward pass (the GEMM layer
  // propagates it by contract) and garble the cache-key quantizer.
  {
    auto poisoned = row_of(scenario().train.normalized(), 0);
    poisoned[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_THROW(service.submit(poisoned), PreconditionError);
    poisoned[1] = std::numeric_limits<float>::infinity();
    EXPECT_THROW(service.submit(poisoned), PreconditionError);
  }
  service.shutdown();
  service.shutdown();  // idempotent
  const Tensor x = scenario().train.normalized();
  EXPECT_THROW(service.submit(row_of(x, 0)), PreconditionError);

  ServiceConfig bad;
  bad.num_workers = 0;
  EXPECT_THROW(LocalizationService(trained().model, 24, Tensor{}, bad),
               PreconditionError);
}

}  // namespace
