// Unit tests: regression trees and the multiclass GBDT classifier.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gbdt.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace {

using namespace cal;
using namespace cal::baselines;

TEST(RegressionTree, SplitsObviousStep) {
  // Feature 0 < 0.5 -> gradient -1 (want leaf +1); else gradient +1.
  Tensor x({8, 2});
  std::vector<double> grad(8);
  std::vector<double> hess(8, 1.0);
  std::vector<std::size_t> rows(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x.at(i, 0) = i < 4 ? 0.1F + 0.05F * i : 0.9F - 0.02F * i;
    x.at(i, 1) = 0.5F;  // uninformative
    grad[i] = i < 4 ? -1.0 : 1.0;
    rows[i] = i;
  }
  GbdtConfig cfg;
  cfg.max_depth = 2;
  cfg.min_samples_leaf = 2;
  cfg.lambda = 0.0;
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, cfg);
  EXPECT_GT(tree.num_nodes(), 1u);
  // Newton leaf: -sum(g)/sum(h) = +1 on the left block, -1 on the right.
  const float left_row[2] = {0.1F, 0.5F};
  const float right_row[2] = {0.9F, 0.5F};
  EXPECT_NEAR(tree.predict_one(left_row), 1.0, 1e-6);
  EXPECT_NEAR(tree.predict_one(right_row), -1.0, 1e-6);
}

TEST(RegressionTree, PureLeafWhenNoGain) {
  Tensor x({4, 1}, 0.5F);  // identical features: nothing to split on
  std::vector<double> grad{1.0, -1.0, 1.0, -1.0};
  std::vector<double> hess(4, 1.0);
  std::vector<std::size_t> rows{0, 1, 2, 3};
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, GbdtConfig{});
  EXPECT_EQ(tree.num_nodes(), 1u);
  const float row[1] = {0.5F};
  EXPECT_NEAR(tree.predict_one(row), 0.0, 1e-9);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  Tensor x({6, 1});
  std::vector<double> grad(6);
  std::vector<double> hess(6, 1.0);
  std::vector<std::size_t> rows(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    grad[i] = i == 0 ? 5.0 : -1.0;  // best split would isolate sample 0
    rows[i] = i;
  }
  GbdtConfig cfg;
  cfg.min_samples_leaf = 3;
  RegressionTree tree;
  tree.fit(x, grad, hess, rows, cfg);
  // The only legal split is 3|3; verify both leaves see >= 3 samples by
  // checking the isolating split was not taken.
  const float row0[1] = {0.0F};
  const float row1[1] = {1.0F};
  EXPECT_NEAR(tree.predict_one(row0), tree.predict_one(row1), 1e-9);
}

TEST(RegressionTree, EmptyFitThrows) {
  Tensor x({2, 1});
  std::vector<double> grad(2);
  std::vector<double> hess(2, 1.0);
  RegressionTree tree;
  EXPECT_THROW(tree.fit(x, grad, hess, {}, GbdtConfig{}),
               PreconditionError);
  const float row[1] = {0.0F};
  EXPECT_THROW(tree.predict_one(row), PreconditionError);
}

/// Three Gaussian blobs in 2-D.
struct Blobs {
  Tensor x;
  std::vector<std::size_t> y;
};

Blobs blobs3(std::size_t per_class, std::uint64_t seed) {
  Rng rng(seed);
  Blobs b;
  b.x = Tensor({3 * per_class, 2});
  const double cx[3] = {0.0, 1.0, 0.5};
  const double cy[3] = {0.0, 0.0, 1.0};
  for (std::size_t i = 0; i < 3 * per_class; ++i) {
    const std::size_t c = i / per_class;
    b.x.at(i, 0) = static_cast<float>(cx[c] + rng.normal(0.0, 0.12));
    b.x.at(i, 1) = static_cast<float>(cy[c] + rng.normal(0.0, 0.12));
    b.y.push_back(c);
  }
  return b;
}

TEST(GbdtClassifier, LearnsBlobs) {
  const auto data = blobs3(30, 5);
  GbdtConfig cfg;
  cfg.rounds = 20;
  GbdtClassifier gbdt(cfg);
  gbdt.fit(data.x, data.y, 3);
  const auto pred = gbdt.predict(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == data.y[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.95);
}

TEST(GbdtClassifier, DecisionScoresShape) {
  const auto data = blobs3(10, 6);
  GbdtClassifier gbdt(GbdtConfig{.rounds = 3});
  gbdt.fit(data.x, data.y, 3);
  const auto scores = gbdt.decision_scores(data.x);
  EXPECT_EQ(scores.rows(), data.x.rows());
  EXPECT_EQ(scores.cols(), 3u);
  EXPECT_EQ(gbdt.rounds_fitted(), 3u);
}

TEST(GbdtClassifier, ValidatesInputs) {
  GbdtClassifier gbdt;
  Tensor x({4, 2});
  const std::vector<std::size_t> y{0, 1, 0};  // wrong size
  EXPECT_THROW(gbdt.fit(x, y, 2), PreconditionError);
  const std::vector<std::size_t> y2{0, 1, 0, 1};
  EXPECT_THROW(gbdt.fit(x, y2, 1), PreconditionError);  // < 2 classes
  EXPECT_THROW(gbdt.predict(x), PreconditionError);     // before fit
}

TEST(GbdtClassifier, ConfigValidation) {
  EXPECT_THROW(GbdtClassifier(GbdtConfig{.rounds = 0}), PreconditionError);
  EXPECT_THROW(GbdtClassifier(GbdtConfig{.learning_rate = 0.0}),
               PreconditionError);
  EXPECT_THROW(GbdtClassifier(GbdtConfig{.subsample = 0.0}),
               PreconditionError);
}

TEST(GbdtClassifier, SubsamplingStillLearns) {
  const auto data = blobs3(30, 7);
  GbdtConfig cfg;
  cfg.rounds = 25;
  cfg.subsample = 0.6;
  GbdtClassifier gbdt(cfg);
  gbdt.fit(data.x, data.y, 3);
  const auto pred = gbdt.predict(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == data.y[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.9);
}

}  // namespace
