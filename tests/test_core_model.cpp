// Unit tests: the CALLOC hyperspace-attention model.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "autograd/ops.hpp"
#include "common/ensure.hpp"
#include "core/calloc_model.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace cal;
using namespace cal::core;

CallocModelConfig small_cfg() {
  CallocModelConfig cfg;
  cfg.num_aps = 8;
  cfg.num_rps = 4;
  cfg.embed_dim = 16;
  cfg.attention_dim = 8;
  cfg.seed = 3;
  return cfg;
}

/// Anchors: one orthogonal-ish fingerprint per RP.
Tensor make_anchors() {
  Tensor a({4, 8});
  for (std::size_t r = 0; r < 4; ++r) {
    a.at(r, 2 * r) = 0.8F;
    a.at(r, 2 * r + 1) = 0.6F;
  }
  return a;
}

std::unique_ptr<CallocModel> make_model_ptr() {
  auto m = std::make_unique<CallocModel>(small_cfg());
  std::vector<std::size_t> labels(4);
  std::iota(labels.begin(), labels.end(), 0);
  m->set_anchors(make_anchors(), labels);
  return m;
}

TEST(CallocModel, ConfigValidation) {
  CallocModelConfig cfg = small_cfg();
  cfg.num_aps = 0;
  EXPECT_THROW(CallocModel{cfg}, PreconditionError);
  cfg = small_cfg();
  cfg.num_rps = 0;
  EXPECT_THROW(CallocModel{cfg}, PreconditionError);
}

TEST(CallocModel, ForwardRequiresAnchors) {
  CallocModel m(small_cfg());
  EXPECT_FALSE(m.has_anchors());
  EXPECT_THROW(m.forward(autograd::constant(Tensor({2, 8}))),
               PreconditionError);
}

TEST(CallocModel, AnchorValidation) {
  CallocModel m(small_cfg());
  const std::vector<std::size_t> labels{0, 1, 2, 3};
  EXPECT_THROW(m.set_anchors(Tensor({4, 5}), labels), PreconditionError);
  const std::vector<std::size_t> bad_labels{0, 1, 2, 9};
  EXPECT_THROW(m.set_anchors(make_anchors(), bad_labels),
               PreconditionError);
}

TEST(CallocModel, ForwardShape) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  m.set_training(false);
  auto out = m.forward(autograd::constant(Tensor({3, 8}, 0.2F)));
  EXPECT_EQ(out->value().rows(), 3u);
  EXPECT_EQ(out->value().cols(), 4u);
  EXPECT_EQ(m.num_anchors(), 4u);
}

TEST(CallocModel, ParameterBreakdownSumsToTotal) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  const auto total = m.parameter_count();
  EXPECT_EQ(total, m.embedding_parameter_count() +
                       m.attention_parameter_count() +
                       m.classifier_parameter_count());
  // Embeddings: 2 * (8*16 + 16); attention: 2 * (16*8 + 8) + 1 (temp);
  // head: 4*4 + 4.
  EXPECT_EQ(m.embedding_parameter_count(), 2u * (8 * 16 + 16));
  EXPECT_EQ(m.attention_parameter_count(), 2u * (16 * 8 + 8) + 1);
  EXPECT_EQ(m.classifier_parameter_count(), 4u * 4 + 4);
}

TEST(CallocModel, PaperScaleParameterAudit) {
  // At the paper's published configuration the embedding layers carry
  // 42,496 trainable parameters (matching §V.A exactly for 165 APs), and
  // the whole model stays within the paper's "lightweight" envelope.
  CallocModelConfig cfg;
  cfg.num_aps = 165;
  cfg.num_rps = 61;
  CallocModel m(cfg);
  EXPECT_EQ(m.embedding_parameter_count(), 42496u);
  EXPECT_EQ(m.classifier_parameter_count(), 61u * 61 + 61);  // 3,782
  EXPECT_LT(m.parameter_count(), 70000u);
}

TEST(CallocModel, AttentionWeightsAreDistributions) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  m.set_training(false);
  Tensor x({5, 8}, 0.1F);
  x.at(0, 0) = 0.9F;
  const Tensor w = m.attention_weights(x);
  EXPECT_EQ(w.rows(), 5u);
  EXPECT_EQ(w.cols(), 4u);
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < w.cols(); ++j) {
      EXPECT_GE(w.at(i, j), 0.0F);
      sum += w.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(CallocModel, SiameseInitAttendsToMatchingAnchor) {
  // A query equal to an anchor fingerprint must put its highest initial
  // attention weight on that anchor — the warm start that makes the
  // architecture trainable (DESIGN.md §6).
  auto mp = make_model_ptr();
  auto& m = *mp;
  m.set_training(false);
  const Tensor anchors = make_anchors();
  const Tensor w = m.attention_weights(anchors);
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < 4; ++j)
      if (w.at(i, j) > w.at(i, best)) best = j;
    EXPECT_EQ(best, i) << "anchor " << i << " does not attend to itself";
  }
}

TEST(CallocModel, HyperspacesHaveEmbedDim) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  auto hc = m.hyperspace_curriculum(autograd::constant(Tensor({2, 8})));
  auto ho = m.hyperspace_original(autograd::constant(Tensor({2, 8})));
  EXPECT_EQ(hc->value().cols(), 16u);
  EXPECT_EQ(ho->value().cols(), 16u);
}

TEST(CallocModel, TrainingModeTogglesAugmentation) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  const Tensor x({4, 8}, 0.5F);
  m.set_training(false);
  const auto eval1 = m.hyperspace_original(autograd::constant(x))->value();
  const auto eval2 = m.hyperspace_original(autograd::constant(x))->value();
  EXPECT_TRUE(allclose(eval1, eval2));  // eval is deterministic
  m.set_training(true);
  const auto train1 = m.hyperspace_original(autograd::constant(x))->value();
  EXPECT_FALSE(allclose(train1, eval1));  // augmentation active
}

TEST(CallocModel, GradientsReachAllParameters) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  m.set_training(false);
  const std::vector<std::size_t> y{0, 1, 2, 3};
  auto logits = m.forward(autograd::constant(make_anchors()));
  auto loss = autograd::cross_entropy(logits, y);
  autograd::backward(loss);
  for (const auto& p : m.parameters()) {
    float norm = 0.0F;
    for (std::size_t i = 0; i < p.var->grad().size(); ++i)
      norm += std::abs(p.var->grad()[i]);
    EXPECT_GT(norm, 0.0F) << "no gradient reached " << p.name;
  }
}

TEST(CallocModel, SaveLoadRoundTrip) {
  auto ap = make_model_ptr();
  auto& a = *ap;
  CallocModel b(small_cfg());
  std::vector<std::size_t> labels{0, 1, 2, 3};
  b.set_anchors(make_anchors(), labels);
  // Perturb b so the round trip is meaningful.
  b.parameters()[0].var->mutable_value().fill(0.5F);

  std::stringstream blob;
  a.save_weights(blob);
  b.load_weights(blob);
  a.set_training(false);
  b.set_training(false);
  const Tensor x({3, 8}, 0.3F);
  EXPECT_TRUE(allclose(nn::predict_tensor(a, x), nn::predict_tensor(b, x)));
}

TEST(CallocModel, OvertfitsTinyProblem) {
  auto mp = make_model_ptr();
  auto& m = *mp;
  // Train to classify the anchors themselves.
  const Tensor x = make_anchors();
  const std::vector<std::size_t> y{0, 1, 2, 3};
  nn::Adam opt(m.parameters(), 1e-2F);
  m.set_training(false);  // no augmentation for this tiny check
  double first = 0.0;
  double last = 0.0;
  for (int e = 0; e < 60; ++e) {
    auto loss = autograd::cross_entropy(m.forward(autograd::constant(x)), y);
    if (e == 0) first = loss->value()[0];
    last = loss->value()[0];
    opt.zero_grad();
    autograd::backward(loss);
    opt.step();
  }
  EXPECT_LT(last, first * 0.5);
  const auto pred = autograd::argmax_rows(nn::predict_tensor(m, x));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(pred[i], y[i]);
}

TEST(CallocModel, ShardScopedAnchorViews) {
  auto m = make_model_ptr();
  const Tensor& all = m->anchor_matrix();

  // Labels round-trip through set_anchors.
  const auto labels = m->anchor_labels();
  ASSERT_EQ(labels.size(), 4u);
  for (std::size_t i = 0; i < labels.size(); ++i) EXPECT_EQ(labels[i], i);

  // A shard view copies exactly the requested rows (e.g. one floor's
  // anchors carved out of the building-wide database).
  const std::vector<std::size_t> shard_rows{3, 1};
  const Tensor shard = m->anchor_rows(shard_rows);
  ASSERT_EQ(shard.rows(), 2u);
  ASSERT_EQ(shard.cols(), all.cols());
  for (std::size_t j = 0; j < all.cols(); ++j) {
    EXPECT_EQ(shard.at(0, j), all.at(3, j));
    EXPECT_EQ(shard.at(1, j), all.at(1, j));
  }

  const std::vector<std::size_t> out_of_range{4};
  EXPECT_THROW(m->anchor_rows(out_of_range), PreconditionError);
  EXPECT_THROW(m->anchor_rows({}), PreconditionError);

  CallocModel fresh(small_cfg());
  EXPECT_THROW(fresh.anchor_labels(), PreconditionError);
}

}  // namespace
