// Integration tests: the full paper pipeline at miniature scale —
// simulate a building, train frameworks, attack the online phase, and
// check that the paper's qualitative orderings hold.
#include <gtest/gtest.h>

#include "baselines/surrogate.hpp"
#include "core/calloc.hpp"
#include "eval/frameworks.hpp"
#include "eval/harness.hpp"
#include "sim/collector.hpp"

namespace {

using namespace cal;

const sim::Scenario& scenario() {
  static const sim::Scenario sc = [] {
    sim::BuildingSpec spec;
    spec.name = "integration";
    spec.num_aps = 28;
    spec.path_length_m = 16;
    spec.seed = 404;
    return sim::make_scenario(spec, 4242);
  }();
  return sc;
}

TEST(Integration, Fig1Shape_ClassicalModelsCollapseUnderAttack) {
  // Fig. 1: FGSM inflates the error of classical ML localizers several-fold.
  baselines::SurrogateGradients surrogate(scenario().train, 11);
  attacks::AttackConfig atk;
  atk.epsilon = 0.4;
  atk.phi_percent = 100.0;

  for (const std::string name : {"KNN", "DNN"}) {
    auto model = eval::make_framework(name, 21, /*fast=*/true);
    model->fit(scenario().train);
    const auto& test = scenario().device_tests.back();
    const auto clean = eval::evaluate_clean(*model, test);
    const auto attacked = eval::evaluate_under_attack(
        *model, test, attacks::AttackKind::Fgsm, atk,
        baselines::gradients_for(*model, surrogate));
    EXPECT_GT(attacked.error_m.mean, clean.error_m.mean + 1.0)
        << name << " should degrade under FGSM";
  }
}

TEST(Integration, Fig5Shape_CurriculumBeatsNoCurriculum) {
  // Fig. 5: with curriculum, CALLOC resists high-ϵ attacks better than the
  // same model trained without lesson progression.
  auto with = eval::make_framework("CALLOC", 31, /*fast=*/true);
  auto without = eval::make_framework("CALLOC-NC", 31, /*fast=*/true);
  with->fit(scenario().train);
  without->fit(scenario().train);

  attacks::AttackConfig atk;
  atk.epsilon = 0.4;
  atk.phi_percent = 80.0;
  double with_err = 0.0;
  double without_err = 0.0;
  for (const auto& test : scenario().device_tests) {
    with_err += eval::evaluate_under_attack(*with, test,
                                            attacks::AttackKind::Fgsm, atk,
                                            *with->gradient_source())
                    .error_m.mean;
    without_err += eval::evaluate_under_attack(
                       *without, test, attacks::AttackKind::Fgsm, atk,
                       *without->gradient_source())
                       .error_m.mean;
  }
  EXPECT_LT(with_err, without_err * 1.1)
      << "curriculum should not be materially worse than NC under attack";
}

TEST(Integration, DeterministicPipeline) {
  // Same seeds end-to-end => identical predictions.
  auto run = [] {
    auto model = eval::make_framework("CALLOC", 77, /*fast=*/true);
    model->fit(scenario().train);
    return model->predict(scenario().device_tests[2].normalized());
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, CrossDeviceEvaluationCoversAllDevices) {
  auto knn = eval::make_framework("KNN", 3);
  knn->fit(scenario().train);
  ASSERT_EQ(scenario().device_names.size(), 6u);
  for (std::size_t d = 0; d < scenario().device_tests.size(); ++d) {
    const auto stats =
        eval::evaluate_clean(*knn, scenario().device_tests[d]);
    // Every device must localise far better than random guessing (which
    // would average ~ a third of the 16 m path).
    EXPECT_LT(stats.error_m.mean, 5.0)
        << "device " << scenario().device_names[d];
  }
}

TEST(Integration, SavedDatasetReproducesResults) {
  // CSV round-trip of the training set must not change a trained model's
  // behaviour (dataset IO is part of the experiment artefact chain).
  const auto path = std::string("/tmp/cal_integration_train.csv");
  scenario().train.save_csv(path);
  const auto reloaded = data::FingerprintDataset::load_csv(path);

  auto a = eval::make_framework("KNN", 5);
  auto b = eval::make_framework("KNN", 5);
  a->fit(scenario().train);
  b->fit(reloaded);
  const auto& test = scenario().device_tests[1];
  EXPECT_EQ(a->predict(test.normalized()), b->predict(test.normalized()));
  std::remove(path.c_str());
}

}  // namespace
