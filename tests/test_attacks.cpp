// Property tests for the white-box attacks: every attack must respect the
// ϵ budget, touch only the ø-selected AP columns, stay inside the valid
// RSS box, and actually increase the victim's loss.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attack.hpp"
#include "attacks/mitm.hpp"
#include "common/ensure.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace cal;
using namespace cal::attacks;

/// Tiny trained victim + data fixture shared by the attack tests.
struct Victim {
  std::unique_ptr<nn::Sequential> net;
  std::unique_ptr<ModuleGradientSource> grads;
  Tensor x;                     // normalised batch in [0,1]
  std::vector<std::size_t> y;
};

Victim make_victim(std::size_t num_aps = 12, std::size_t classes = 3) {
  Victim v;
  Rng rng(101);
  v.net = std::make_unique<nn::Sequential>();
  v.net->emplace<nn::Linear>(num_aps, 24, rng);
  v.net->emplace<nn::ReLU>();
  v.net->emplace<nn::Linear>(24, classes, rng);

  // Class c concentrates energy on AP block c.
  const std::size_t n = 60;
  v.x = Tensor({n, num_aps});
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % classes;
    for (std::size_t j = 0; j < num_aps; ++j) {
      const bool hot = j / (num_aps / classes) == cls;
      v.x.at(i, j) = std::clamp(
          static_cast<float>((hot ? 0.7 : 0.15) + rng.normal(0.0, 0.05)),
          0.0F, 1.0F);
    }
    v.y.push_back(cls);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 30;
  cfg.seed = 7;
  nn::fit_classifier(*v.net, v.x, v.y, cfg);
  v.grads = std::make_unique<ModuleGradientSource>(*v.net);
  return v;
}

double loss_of(Victim& v, const Tensor& x) {
  return nn::evaluate_classifier_loss(*v.net, x, v.y);
}

/// Columns whose values changed anywhere in the batch.
std::vector<std::size_t> changed_columns(const Tensor& a, const Tensor& b) {
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (a.at(i, j) != b.at(i, j)) {
        cols.push_back(j);
        break;
      }
    }
  }
  return cols;
}

TEST(GradientSource, ShapeAndNonZero) {
  auto v = make_victim();
  const Tensor g = v.grads->input_gradient(v.x, v.y);
  EXPECT_TRUE(g.same_shape(v.x));
  EXPECT_GT(g.abs_max(), 0.0F);
}

TEST(TargetSelection, CountMatchesPhi) {
  auto v = make_victim();
  AttackConfig cfg;
  for (double phi : {10.0, 25.0, 50.0, 100.0}) {
    cfg.phi_percent = phi;
    const auto targets = select_target_aps(v.x, v.y, cfg, *v.grads);
    const auto expected = static_cast<std::size_t>(
        std::round(12 * phi / 100.0));
    EXPECT_EQ(targets.size(), std::max<std::size_t>(1, expected));
  }
}

TEST(TargetSelection, StrongestPicksHighestMeanColumns) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.phi_percent = 25.0;  // 3 of 12 APs
  cfg.selection = TargetSelection::Strongest;
  const auto targets = select_target_aps(v.x, v.y, cfg, *v.grads);
  // Verify every selected column has mean >= every unselected column.
  std::vector<double> mean(12, 0.0);
  for (std::size_t i = 0; i < v.x.rows(); ++i)
    for (std::size_t j = 0; j < 12; ++j) mean[j] += v.x.at(i, j);
  std::vector<bool> chosen(12, false);
  for (auto t : targets) chosen[t] = true;
  double min_chosen = 1e9, max_unchosen = -1e9;
  for (std::size_t j = 0; j < 12; ++j) {
    if (chosen[j]) min_chosen = std::min(min_chosen, mean[j]);
    else max_unchosen = std::max(max_unchosen, mean[j]);
  }
  EXPECT_GE(min_chosen, max_unchosen);
}

TEST(TargetSelection, RandomIsSeedDeterministic) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.phi_percent = 50.0;
  cfg.selection = TargetSelection::Random;
  cfg.seed = 33;
  const auto a = select_target_aps(v.x, v.y, cfg, *v.grads);
  const auto b = select_target_aps(v.x, v.y, cfg, *v.grads);
  EXPECT_EQ(a, b);
  cfg.seed = 34;
  const auto c = select_target_aps(v.x, v.y, cfg, *v.grads);
  EXPECT_NE(a, c);
}

TEST(TargetSelection, InvalidPhiThrows) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.phi_percent = 0.0;
  EXPECT_THROW(select_target_aps(v.x, v.y, cfg, *v.grads),
               PreconditionError);
  cfg.phi_percent = 120.0;
  EXPECT_THROW(select_target_aps(v.x, v.y, cfg, *v.grads),
               PreconditionError);
}

struct AttackCase {
  AttackKind kind;
  double epsilon;
  double phi;
};

class AttackInvariants : public ::testing::TestWithParam<AttackCase> {};

TEST_P(AttackInvariants, BudgetMaskBoxAndDamage) {
  const auto param = GetParam();
  auto v = make_victim();
  AttackConfig cfg;
  cfg.epsilon = param.epsilon;
  cfg.phi_percent = param.phi;
  cfg.num_steps = 6;
  const Tensor x_adv = run_attack(param.kind, *v.grads, v.x, v.y, cfg);

  // 1. L-infinity budget.
  const Tensor delta = x_adv - v.x;
  EXPECT_LE(delta.abs_max(), static_cast<float>(param.epsilon) + 1e-5F);

  // 2. Only the selected ø% columns change.
  const auto targets = select_target_aps(v.x, v.y, cfg, *v.grads);
  const auto changed = changed_columns(v.x, x_adv);
  for (auto col : changed)
    EXPECT_TRUE(std::find(targets.begin(), targets.end(), col) !=
                targets.end())
        << "column " << col << " changed but was not targeted";

  // 3. Valid RSS box.
  for (std::size_t i = 0; i < x_adv.size(); ++i) {
    EXPECT_GE(x_adv[i], 0.0F);
    EXPECT_LE(x_adv[i], 1.0F);
  }

  // 4. The attack hurts: loss increases.
  EXPECT_GT(loss_of(v, x_adv), loss_of(v, v.x));
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonPhiSweep, AttackInvariants,
    ::testing::Values(AttackCase{AttackKind::Fgsm, 0.1, 100.0},
                      AttackCase{AttackKind::Fgsm, 0.3, 50.0},
                      AttackCase{AttackKind::Fgsm, 0.5, 25.0},
                      AttackCase{AttackKind::Pgd, 0.1, 100.0},
                      AttackCase{AttackKind::Pgd, 0.3, 50.0},
                      AttackCase{AttackKind::Pgd, 0.5, 100.0},
                      AttackCase{AttackKind::Mim, 0.1, 100.0},
                      AttackCase{AttackKind::Mim, 0.3, 50.0},
                      AttackCase{AttackKind::Mim, 0.5, 25.0}));

TEST(Attacks, IterativeAtLeastAsStrongAsFgsm) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.epsilon = 0.2;
  cfg.phi_percent = 100.0;
  cfg.num_steps = 10;
  const double fgsm_loss =
      loss_of(v, fgsm_attack(*v.grads, v.x, v.y, cfg));
  const double pgd_loss = loss_of(v, pgd_attack(*v.grads, v.x, v.y, cfg));
  const double mim_loss = loss_of(v, mim_attack(*v.grads, v.x, v.y, cfg));
  // PGD/MIM refine the FGSM direction; allow a small tolerance for the
  // rare case the one-shot sign step is already optimal.
  EXPECT_GT(pgd_loss, fgsm_loss * 0.9);
  EXPECT_GT(mim_loss, fgsm_loss * 0.9);
}

TEST(Attacks, NoneKindIsIdentity) {
  auto v = make_victim();
  AttackConfig cfg;
  const Tensor out = run_attack(AttackKind::None, *v.grads, v.x, v.y, cfg);
  EXPECT_TRUE(allclose(out, v.x));
}

TEST(Attacks, ZeroEpsilonChangesNothing) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.epsilon = 0.0;
  const Tensor out = fgsm_attack(*v.grads, v.x, v.y, cfg);
  EXPECT_TRUE(allclose(out, v.x));
}

TEST(Attacks, InvalidConfigThrows) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.epsilon = 2.0;
  EXPECT_THROW(fgsm_attack(*v.grads, v.x, v.y, cfg), PreconditionError);
  cfg.epsilon = 0.1;
  cfg.num_steps = 0;
  EXPECT_THROW(pgd_attack(*v.grads, v.x, v.y, cfg), PreconditionError);
}

TEST(Attacks, LabelsBatchMismatchThrows) {
  auto v = make_victim();
  AttackConfig cfg;
  const std::vector<std::size_t> wrong{0};
  EXPECT_THROW(fgsm_attack(*v.grads, v.x, wrong, cfg), PreconditionError);
}

TEST(Attacks, PgdRandomStartStaysInBall) {
  auto v = make_victim();
  AttackConfig cfg;
  cfg.epsilon = 0.15;
  cfg.random_start = true;
  cfg.num_steps = 4;
  const Tensor x_adv = pgd_attack(*v.grads, v.x, v.y, cfg);
  EXPECT_LE((x_adv - v.x).abs_max(), 0.15F + 1e-5F);
}

TEST(Mitm, ManipulationCannotTouchUndetectedAps) {
  auto v = make_victim();
  // Zero out one targeted AP column entirely ("not detected").
  Tensor x = v.x;
  for (std::size_t i = 0; i < x.rows(); ++i) x.at(i, 0) = 0.0F;
  AttackConfig cfg;
  cfg.epsilon = 0.4;
  cfg.phi_percent = 100.0;
  const Tensor manip = mitm_attack(MitmMode::SignalManipulation,
                                   AttackKind::Fgsm, *v.grads, x, v.y, cfg);
  for (std::size_t i = 0; i < x.rows(); ++i)
    EXPECT_FLOAT_EQ(manip.at(i, 0), 0.0F);

  const Tensor spoof = mitm_attack(MitmMode::SignalSpoofing,
                                   AttackKind::Fgsm, *v.grads, x, v.y, cfg);
  // Spoofing CAN conjure readings on a silent AP.
  bool any_changed = false;
  for (std::size_t i = 0; i < x.rows(); ++i)
    any_changed = any_changed || spoof.at(i, 0) != 0.0F;
  EXPECT_TRUE(any_changed);
}

TEST(Mitm, NoneKindPassesThrough) {
  auto v = make_victim();
  AttackConfig cfg;
  const Tensor out = mitm_attack(MitmMode::SignalSpoofing, AttackKind::None,
                                 *v.grads, v.x, v.y, cfg);
  EXPECT_TRUE(allclose(out, v.x));
}

struct MitmCase {
  MitmMode mode;
  AttackKind kind;
};

class MitmInvariants : public ::testing::TestWithParam<MitmCase> {};

TEST_P(MitmInvariants, ChannelRealismHolds) {
  const auto param = GetParam();
  auto v = make_victim();
  // Silence two columns so "not detected" semantics are exercised.
  Tensor x = v.x;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x.at(i, 3) = 0.0F;
    x.at(i, 9) = 0.0F;
  }
  AttackConfig cfg;
  cfg.epsilon = 0.3;
  cfg.phi_percent = 100.0;
  cfg.num_steps = 4;
  const Tensor out =
      mitm_attack(param.mode, param.kind, *v.grads, x, v.y, cfg);

  // Invariants shared by every channel mode and algorithm:
  EXPECT_LE((out - x).abs_max(), 0.3F + 1e-5F);  // epsilon budget
  for (std::size_t i = 0; i < out.size(); ++i) {  // valid RSS box
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
  if (param.mode == MitmMode::SignalManipulation) {
    // Manipulation cannot create readings for silent APs.
    for (std::size_t i = 0; i < x.rows(); ++i) {
      EXPECT_FLOAT_EQ(out.at(i, 3), 0.0F);
      EXPECT_FLOAT_EQ(out.at(i, 9), 0.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModeKindMatrix, MitmInvariants,
    ::testing::Values(
        MitmCase{MitmMode::SignalManipulation, AttackKind::Fgsm},
        MitmCase{MitmMode::SignalManipulation, AttackKind::Pgd},
        MitmCase{MitmMode::SignalManipulation, AttackKind::Mim},
        MitmCase{MitmMode::SignalSpoofing, AttackKind::Fgsm},
        MitmCase{MitmMode::SignalSpoofing, AttackKind::Pgd},
        MitmCase{MitmMode::SignalSpoofing, AttackKind::Mim}));

TEST(Names, ToStringCoverage) {
  EXPECT_EQ(to_string(AttackKind::Fgsm), "FGSM");
  EXPECT_EQ(to_string(AttackKind::Pgd), "PGD");
  EXPECT_EQ(to_string(AttackKind::Mim), "MIM");
  EXPECT_EQ(to_string(AttackKind::None), "None");
  EXPECT_EQ(to_string(TargetSelection::Strongest), "Strongest");
  EXPECT_EQ(to_string(MitmMode::SignalSpoofing), "SignalSpoofing");
}

}  // namespace
